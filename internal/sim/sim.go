// Package sim wires the full system together: functional emulator, timing
// core, branch predictor, cache hierarchy, and the Phelps controller (or the
// Branch Runahead baseline), and runs workloads to produce the paper's
// metrics (IPC, MPKI, helper-thread overhead, misprediction attribution).
package sim

import (
	"fmt"

	"phelps/internal/bpred"
	"phelps/internal/cache"
	"phelps/internal/core"
	"phelps/internal/cpu"
	"phelps/internal/emu"
	"phelps/internal/obs"
	"phelps/internal/prog"
	"phelps/internal/runahead"
)

// PredictorKind selects the core's branch predictor.
type PredictorKind int

// Available predictors.
const (
	PredTAGE PredictorKind = iota
	PredPerfect
	PredBimodal
	PredGshare
)

// Mode selects the pre-execution mechanism under test.
type Mode int

// Simulation modes.
const (
	ModeBaseline Mode = iota // core + predictor only
	ModePhelps               // predicated helper threads
	ModeRunahead             // Branch Runahead baseline
)

// Config is a full simulation configuration.
type Config struct {
	Core      cpu.Config
	Cache     cache.Config
	Predictor PredictorKind
	Mode      Mode
	Phelps    core.Config
	Runahead  runahead.Config

	// ForcePartition halves the main thread's resources for the entire run
	// without running helper threads (Fig. 13c).
	ForcePartition bool

	// MaxInsts stops the simulation after this many retired instructions
	// (0 = run to HALT). Verification only happens on complete runs.
	MaxInsts uint64
	// MaxCycles is a safety net against livelock. A run that exhausts it
	// stops gracefully with Result.TimedOut set (it does not panic), so a
	// hung configuration still produces a reportable matrix row.
	MaxCycles uint64

	// Obs optionally collects observability data for this run: registry
	// counters, interval samples, and (if Obs.Trace is set) a Konata
	// pipeline trace of the main thread. A Collector must not be shared
	// between concurrent runs.
	Obs *obs.Collector
}

// DefaultConfig returns the paper's baseline configuration with Phelps off.
func DefaultConfig() Config {
	return Config{
		Core:      cpu.DefaultConfig(),
		Cache:     cache.DefaultConfig(),
		Predictor: PredTAGE,
		Mode:      ModeBaseline,
		Phelps:    core.DefaultConfig(),
		Runahead:  runahead.DefaultConfig(),
		MaxCycles: 2_000_000_000,
	}
}

// PhelpsConfig returns a full-featured Phelps configuration with the given
// epoch length (scaled-down runs use shorter epochs; see EXPERIMENTS.md).
func PhelpsConfig(epochLen uint64) Config {
	cfg := DefaultConfig()
	cfg.Mode = ModePhelps
	cfg.Phelps.Enabled = true
	cfg.Phelps.EpochLen = epochLen
	return cfg
}

// Result carries the metrics of one run.
type Result struct {
	Cycles       uint64
	Retired      uint64
	CondBranches uint64
	Mispredicts  uint64
	QueuePreds   uint64
	QueueMisps   uint64
	Halted       bool
	// TimedOut reports that the run hit Config.MaxCycles before halting;
	// LivelockErr carries the detail (nil otherwise).
	TimedOut    bool
	LivelockErr error
	VerifyErr   error

	Phelps   core.Stats
	Runahead runahead.Stats
	Cache    cache.Stats
	Epochs   int
}

// IPC returns instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Retired) / float64(r.Cycles)
}

// MPKI returns mispredictions per kilo-instruction.
func (r *Result) MPKI() float64 {
	if r.Retired == 0 {
		return 0
	}
	return float64(r.Mispredicts) * 1000 / float64(r.Retired)
}

func makePredictor(kind PredictorKind) bpred.Predictor {
	switch kind {
	case PredPerfect:
		return bpred.Perfect{}
	case PredBimodal:
		return bpred.NewBimodal(14)
	case PredGshare:
		return bpred.NewGshare(15, 13)
	default:
		return bpred.NewTAGE(bpred.DefaultTAGEConfig())
	}
}

// Run simulates a workload under a configuration. The workload's memory is
// consumed by the run (build a fresh Workload per Run call).
func Run(w *prog.Workload, cfg Config) Result {
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 2_000_000_000
	}
	mem := w.Mem
	hier := cache.New(cfg.Cache)
	e := emu.New(w.Prog, mem)
	pred := makePredictor(cfg.Predictor)

	var ctrl *core.Controller
	var bra *runahead.Controller
	hooks := cpu.Hooks{}

	switch cfg.Mode {
	case ModePhelps:
		cfg.Phelps.Enabled = true
		ctrl = core.NewController(cfg.Phelps, cfg.Core, mem, hier)
		hooks.Predict = func(d *emu.DynInst) cpu.Prediction {
			base := pred.PredictAndTrain(d.PC, d.Taken)
			if p, handled := ctrl.Predict(d); handled {
				return p
			}
			return cpu.Prediction{Taken: base}
		}
		hooks.OnFetch = ctrl.OnFetch
		hooks.OnRetire = func(d *emu.DynInst, misp bool) { ctrl.OnRetire(d, misp) }
	case ModeRunahead:
		bra = runahead.NewController(cfg.Runahead, cfg.Core, mem, hier)
		hooks.Predict = func(d *emu.DynInst) cpu.Prediction {
			base := pred.PredictAndTrain(d.PC, d.Taken)
			if p, handled := bra.Predict(d); handled {
				return p
			}
			return cpu.Prediction{Taken: base}
		}
		hooks.OnFetch = bra.OnFetch
		hooks.OnRetire = func(d *emu.DynInst, misp bool) { bra.OnRetire(d, misp) }
	default:
		hooks.Predict = func(d *emu.DynInst) cpu.Prediction {
			return cpu.Prediction{Taken: pred.PredictAndTrain(d.PC, d.Taken)}
		}
	}

	mt := cpu.NewCore(cfg.Core, mem, hier, func() (emu.DynInst, bool) { return e.Step() }, hooks)
	if ctrl != nil {
		ctrl.AttachCore(mt)
	}
	if bra != nil {
		bra.AttachCore(mt)
	}
	if cfg.ForcePartition {
		mt.SetLimits(cfg.Core.FullLimits().Scale(1, 2))
	}

	if o := cfg.Obs; o != nil {
		mt.RegisterObs(o.Registry, "core.main")
		hier.RegisterObs(o.Registry, "cache")
		if ro, ok := pred.(interface {
			RegisterObs(*obs.Registry, string)
		}); ok {
			ro.RegisterObs(o.Registry, "bpred."+pred.Name())
		}
		if ctrl != nil {
			ctrl.RegisterObs(o.Registry, "phelps")
		}
		if bra != nil {
			bra.RegisterObs(o.Registry, "runahead")
		}
		if o.Trace != nil {
			mt.SetTracer(o.Trace)
		}
	}

	lanes := &cpu.LanePool{}
	var now uint64
	timedOut := false
	for ; ; now++ {
		if mt.Halted() {
			break
		}
		if cfg.MaxInsts > 0 && mt.Stats.Retired >= cfg.MaxInsts {
			break
		}
		if now >= cfg.MaxCycles {
			timedOut = true
			break
		}
		lanes.Reset(cfg.Core)
		// The IQ and lanes are flexibly shared (Section IV-A). Helper
		// threads issue first: they are latency-critical (their lead is what
		// produces timely predictions) and naturally self-throttle at the
		// prediction-queue depth, returning bandwidth to the main thread at
		// the full-queue equilibrium.
		if ctrl != nil {
			ctrl.SetNow(now)
			ctrl.CycleEngines(now, lanes)
			mt.Cycle(now, lanes)
		} else if bra != nil {
			bra.SetNow(now)
			bra.CycleChains(now, lanes)
			mt.Cycle(now, lanes)
		} else {
			mt.Cycle(now, lanes)
		}
		if cfg.Obs != nil {
			cfg.Obs.MaybeSample(mt.Stats.Cycles)
		}
	}
	if cfg.Obs != nil {
		cfg.Obs.Finish(mt.Stats.Cycles)
	}

	res := Result{
		Cycles:       mt.Stats.Cycles,
		Retired:      mt.Stats.Retired,
		CondBranches: mt.Stats.CondBranches,
		Mispredicts:  mt.Stats.Mispredicts,
		QueuePreds:   mt.Stats.QueuePreds,
		QueueMisps:   mt.Stats.QueueMisps,
		Halted:       mt.Halted(),
		TimedOut:     timedOut,
		Cache:        hier.Stats,
	}
	if timedOut {
		res.LivelockErr = fmt.Errorf("sim: %s did not finish within %d cycles (retired %d)",
			w.Name, cfg.MaxCycles, mt.Stats.Retired)
	}
	if ctrl != nil {
		ctrl.FinalizeAttribution()
		res.Phelps = ctrl.Stats
		res.Epochs = ctrl.EpochIndex
	}
	if bra != nil {
		res.Runahead = bra.Stats
	}
	if res.Halted && w.Verify != nil {
		res.VerifyErr = w.Verify(mem)
	}
	return res
}
