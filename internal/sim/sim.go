// Package sim wires the full system together: functional emulator, timing
// core, branch predictor, cache hierarchy, and the Phelps controller (or the
// Branch Runahead baseline), and runs workloads to produce the paper's
// metrics (IPC, MPKI, helper-thread overhead, misprediction attribution).
//
// Run is the full cycle-accurate entry point; SampledRun (sampled.go) is the
// SimPoint-sampled one. Both return (Result, error): failures surface as
// wrapped sentinel errors (ErrLivelock, ErrVerify, ErrConsumed) matchable
// with errors.Is, and the Result carries whatever metrics were collected up
// to the failure.
package sim

import (
	"context"
	"errors"
	"fmt"

	"phelps/internal/bpred"
	"phelps/internal/cache"
	"phelps/internal/check"
	"phelps/internal/clock"
	"phelps/internal/core"
	"phelps/internal/cpu"
	"phelps/internal/emu"
	"phelps/internal/obs"
	"phelps/internal/prog"
	"phelps/internal/runahead"
)

// Sentinel errors returned (wrapped) by Run and SampledRun.
var (
	// ErrLivelock: the run hit Config.MaxCycles before halting. The
	// accompanying Result is still populated (and Result.TimedOut set) so a
	// hung configuration produces a reportable matrix row.
	ErrLivelock = errors.New("simulation exceeded MaxCycles")
	// ErrVerify: the workload halted but its architectural results are
	// wrong.
	ErrVerify = errors.New("workload verification failed")
	// ErrConsumed: the workload's memory was already consumed by a previous
	// Run (build a fresh Workload per run, or use SampledRun, which takes a
	// Spec builder and cannot alias consumed state).
	ErrConsumed = errors.New("workload memory already consumed")
	// ErrPanic: the simulator panicked mid-run. RunMatrix and SampledRun
	// recover per-experiment panics into this sentinel (with the original
	// panic value and stack in the wrap), so one crashing cell cannot take
	// down a whole matrix; a minimized repro is dumped under the crash
	// directory (see MatrixOptions.CrashDir and EXPERIMENTS.md).
	ErrPanic = errors.New("simulator panicked")
	// ErrStall: the forward-progress watchdog fired — no instruction retired
	// for Config.StallCycles cycles. Distinct from ErrLivelock: a livelocked
	// run retires forever without halting, a stalled run stops retiring
	// entirely (a wedged pipeline). The wrap carries the pipeline occupancy
	// diagnosis.
	ErrStall = errors.New("pipeline stopped retiring")
	// ErrCheck: a verification check failed — the lockstep oracle observed a
	// divergence (Config.Lockstep) or a microarchitectural invariant was
	// violated (Config.Checks). The wrap carries the first failure's detail.
	ErrCheck = errors.New("verification check failed")
	// ErrCanceled: the run's context was canceled (RunCtx, SampledRunCtx,
	// RunMatrixCtx). The Result carries whatever was measured before the
	// cancellation point; the wrap carries the context's cause.
	ErrCanceled = errors.New("run canceled")
)

// IsTransient classifies a run failure for retry policies: transient
// failures are environmental — a wedged pipeline (ErrStall) or a recovered
// panic (ErrPanic) can be caused by resource pressure, a poisoned pooled
// structure, or an injected fault that will not strike again — and are worth
// a bounded number of re-executions. Everything else is deterministic with
// respect to the (workload, config) cell: livelock, verification and oracle
// failures, a consumed workload, and cancellation all recur on every retry,
// so callers should fail fast and record them as permanent.
func IsTransient(err error) bool {
	return errors.Is(err, ErrStall) || errors.Is(err, ErrPanic)
}

// Forward-progress watchdog controls (Config.StallCycles).
const (
	// DefaultStallCycles is the watchdog threshold when Config.StallCycles
	// is zero: no real configuration keeps the ROB head unretired this long
	// (the worst memory round-trip is a few hundred cycles), so a hit is a
	// wedged pipeline, not a slow one.
	DefaultStallCycles uint64 = 1_000_000
	// NoStallWatchdog disables the watchdog entirely.
	NoStallWatchdog uint64 = ^uint64(0)
)

// PredictorKind selects the core's branch predictor.
type PredictorKind int

// Available predictors.
const (
	PredTAGE PredictorKind = iota
	PredPerfect
	PredBimodal
	PredGshare
)

// Mode selects the pre-execution mechanism under test.
type Mode int

// Simulation modes.
const (
	ModeBaseline Mode = iota // core + predictor only
	ModePhelps               // predicated helper threads
	ModeRunahead             // Branch Runahead baseline
)

// Config is a full simulation configuration.
type Config struct {
	Core      cpu.Config
	Cache     cache.Config
	Predictor PredictorKind
	Mode      Mode
	Phelps    core.Config
	Runahead  runahead.Config

	// ForcePartition halves the main thread's resources for the entire run
	// without running helper threads (Fig. 13c).
	ForcePartition bool

	// MaxInsts stops the simulation after this many retired instructions
	// (0 = run to HALT). Verification only happens on complete runs.
	MaxInsts uint64
	// MaxCycles is a safety net against livelock. A run that exhausts it
	// stops gracefully with Result.TimedOut set and Run returning a wrapped
	// ErrLivelock (it does not panic), so a hung configuration still
	// produces a reportable matrix row.
	MaxCycles uint64

	// Obs optionally collects observability data for this run: registry
	// counters, interval samples, and (if Obs.Trace is set) a Konata
	// pipeline trace of the main thread. A Collector must not be shared
	// between concurrent runs.
	Obs *obs.Collector

	// Checks enables the microarchitectural invariant audit: the cheap
	// structural checks every cycle and the deep occupancy recount (plus the
	// Phelps partition-quota audit) every 256 cycles. A violation stops the
	// run with a wrapped ErrCheck. Zero overhead when false. Checks forces
	// per-cycle stepping (the audit wants to see every cycle), so it also
	// implies ForceStep.
	Checks bool

	// ForceStep disables event-driven cycle skipping (DESIGN.md ·
	// Event-driven clock), executing every cycle even when the machine can
	// prove a span is event-free. Results are identical either way; this
	// exists for A/B validation and host-performance comparison.
	ForceStep bool

	// Lockstep enables the differential retirement oracle: an independent
	// reference emulator replays the program alongside the timing run and
	// every retired instruction is compared record-by-record (see
	// internal/check). A divergence stops the run with a wrapped ErrCheck.
	Lockstep bool

	// StallCycles is the forward-progress watchdog threshold: if no
	// instruction retires for this many cycles the run stops with a wrapped
	// ErrStall and a pipeline-occupancy diagnosis. Zero means
	// DefaultStallCycles; NoStallWatchdog disables it.
	StallCycles uint64

	// Faults injects deliberate timing-model bugs into the main core (tests
	// of the verification machinery only; see cpu.FaultInjection).
	Faults *cpu.FaultInjection
}

// DefaultConfig returns the paper's baseline configuration with Phelps off.
func DefaultConfig() Config {
	return Config{
		Core:      cpu.DefaultConfig(),
		Cache:     cache.DefaultConfig(),
		Predictor: PredTAGE,
		Mode:      ModeBaseline,
		Phelps:    core.DefaultConfig(),
		Runahead:  runahead.DefaultConfig(),
		MaxCycles: 2_000_000_000,
	}
}

// PhelpsConfig returns a full-featured Phelps configuration with the given
// epoch length (scaled-down runs use shorter epochs; see EXPERIMENTS.md).
func PhelpsConfig(epochLen uint64) Config {
	cfg := DefaultConfig()
	cfg.Mode = ModePhelps
	cfg.Phelps.Enabled = true
	cfg.Phelps.EpochLen = epochLen
	return cfg
}

// Result carries the metrics of one run.
type Result struct {
	Cycles       uint64
	Retired      uint64
	CondBranches uint64
	Mispredicts  uint64
	QueuePreds   uint64
	QueueMisps   uint64
	Halted       bool
	// TimedOut reports that the run hit Config.MaxCycles before halting
	// (the returned error wraps ErrLivelock with the detail).
	TimedOut bool
	// SkippedCycles counts cycles the event-driven clock proved event-free
	// and bulk-accounted instead of executing (0 under ForceStep/Checks).
	// They are included in Cycles; the ratio is the host-time win.
	SkippedCycles uint64

	Phelps   core.Stats
	Runahead runahead.Stats
	Cache    cache.Stats
	Epochs   int

	// Sampled is set by SampledRun only: how this Result was reconstructed
	// from SimPoint-weighted intervals (nil for full runs).
	Sampled *SampleReport
}

// IPC returns instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Retired) / float64(r.Cycles)
}

// MPKI returns mispredictions per kilo-instruction.
func (r *Result) MPKI() float64 {
	if r.Retired == 0 {
		return 0
	}
	return float64(r.Mispredicts) * 1000 / float64(r.Retired)
}

func makePredictor(kind PredictorKind) bpred.Predictor {
	switch kind {
	case PredPerfect:
		return bpred.Perfect{}
	case PredBimodal:
		return bpred.NewBimodal(14)
	case PredGshare:
		return bpred.NewGshare(15, 13)
	default:
		return bpred.NewTAGE(bpred.DefaultTAGEConfig())
	}
}

// runOutcome tells a machine.run caller why the cycle loop stopped.
type runOutcome int

const (
	runDone        runOutcome = iota // halted or instruction bound reached
	runTimeout                       // maxCycles exhausted (ErrLivelock)
	runStalled                       // forward-progress watchdog fired (ErrStall)
	runCheckFailed                   // invariant violation or oracle divergence (ErrCheck)
	runCanceled                      // the run context was canceled (ErrCanceled)
)

// guard bundles the optional verification machinery of a run (invariant
// checks and the lockstep oracle). It is nil when neither is enabled, so the
// hot cycle loop pays one pointer test.
type guard struct {
	mt     *cpu.Core
	ctrl   *core.Controller // Phelps partition audit (nil otherwise)
	orc    *check.Oracle    // lockstep oracle (nil when Lockstep off)
	checks bool
}

// tick runs the per-cycle verification work; a non-nil error is the first
// failure and stops the run.
func (g *guard) tick(now uint64) error {
	if g.checks {
		if err := g.mt.CheckInvariants(); err != nil {
			return err
		}
		// The deep recount is O(in-flight window); amortize it.
		if now&255 == 0 {
			if err := g.mt.CheckInvariantsDeep(); err != nil {
				return err
			}
			if g.ctrl != nil {
				if err := g.ctrl.CheckInvariants(); err != nil {
					return err
				}
			}
		}
	}
	if g.orc != nil {
		if d := g.orc.Divergence(); d != nil {
			return d
		}
	}
	return nil
}

// machine is one assembled timing system: core, predictor, hierarchy, and
// the mode's controller, plus the cycle loop's mutable state. Run drives a
// machine from reset to halt; SampledRun drives one per SimPoint from a
// resumed checkpoint through warmup and measurement phases.
type machine struct {
	cfg   Config
	mt    *cpu.Core
	ctrl  *core.Controller
	bra   *runahead.Controller
	hier  *cache.Hierarchy
	pred  bpred.Predictor
	lanes cpu.LanePool
	now   uint64

	guard *guard // verification machinery; nil unless Checks/Lockstep set

	// Forward-progress watchdog (polled every 1024 cycles; 0 = disabled).
	stall        uint64
	lastRetired  uint64
	lastProgress uint64

	// Event-driven clock state (DESIGN.md · Event-driven clock). sched is
	// the machine's calendar event queue; nil in oracle mode
	// (ForceStep/Checks), where every cycle steps.
	sched   *clock.Scheduler
	skipped uint64 // cycles bulk-accounted instead of executed

	// done, when non-nil, is the run context's Done channel; the cycle loop
	// polls it alongside the watchdog so a canceled run stops within ~1k
	// stepped cycles (runCanceled). nil — context.Background — costs one nil
	// test per poll.
	done <-chan struct{}

	failure error // first stall/check failure diagnosis (runStalled/runCheckFailed)
}

// setupGuards wires the watchdog and (if enabled) the invariant/oracle guard
// into the machine. orc may be nil.
func (m *machine) setupGuards(orc *check.Oracle) {
	switch {
	case m.cfg.StallCycles == NoStallWatchdog:
		m.stall = 0
	case m.cfg.StallCycles == 0:
		m.stall = DefaultStallCycles
	default:
		m.stall = m.cfg.StallCycles
	}
	m.lastProgress = m.now
	if orc != nil {
		orc.Attach(m.mt)
	}
	if m.cfg.Checks || orc != nil {
		m.guard = &guard{mt: m.mt, ctrl: m.ctrl, orc: orc, checks: m.cfg.Checks}
	}
}

// newMachine assembles a machine over an emulator. pred and hier may be
// pre-warmed (SampledRun trains them functionally before the timing phases).
func newMachine(cfg Config, mem *emu.Memory, e *emu.Emulator, pred bpred.Predictor, hier *cache.Hierarchy) *machine {
	m := &machine{cfg: cfg, pred: pred, hier: hier}
	hooks := cpu.Hooks{}

	switch cfg.Mode {
	case ModePhelps:
		m.cfg.Phelps.Enabled = true
		m.ctrl = core.NewController(m.cfg.Phelps, cfg.Core, mem, hier)
		ctrl := m.ctrl
		hooks.Predict = func(d *emu.DynInst) cpu.Prediction {
			base := pred.PredictAndTrain(d.PC, d.Taken)
			if p, handled := ctrl.Predict(d); handled {
				return p
			}
			return cpu.Prediction{Taken: base}
		}
		hooks.OnFetch = ctrl.OnFetch
		hooks.OnRetire = func(d *emu.DynInst, misp bool) { ctrl.OnRetire(d, misp) }
	case ModeRunahead:
		m.bra = runahead.NewController(cfg.Runahead, cfg.Core, mem, hier)
		bra := m.bra
		hooks.Predict = func(d *emu.DynInst) cpu.Prediction {
			base := pred.PredictAndTrain(d.PC, d.Taken)
			if p, handled := bra.Predict(d); handled {
				return p
			}
			return cpu.Prediction{Taken: base}
		}
		hooks.OnFetch = bra.OnFetch
		hooks.OnRetire = func(d *emu.DynInst, misp bool) { bra.OnRetire(d, misp) }
	default:
		hooks.Predict = func(d *emu.DynInst) cpu.Prediction {
			return cpu.Prediction{Taken: pred.PredictAndTrain(d.PC, d.Taken)}
		}
	}

	m.mt = cpu.NewCore(cfg.Core, mem, hier, func() (emu.DynInst, bool) { return e.Step() }, hooks)
	if m.ctrl != nil {
		m.ctrl.AttachCore(m.mt)
	}
	if m.bra != nil {
		m.bra.AttachCore(m.mt)
	}
	if cfg.ForcePartition {
		m.mt.SetLimits(cfg.Core.FullLimits().Scale(1, 2))
	}
	if cfg.Faults != nil {
		m.mt.InjectFaults(cfg.Faults)
	}
	// Event-driven clock: attach one scheduler to every timing component
	// unless the run wants the per-cycle oracle mode (Checks implies
	// ForceStep: the invariant audit sees every cycle). Components post
	// wakeups through it; the driver loop pops and jumps.
	if !cfg.ForceStep && !cfg.Checks {
		m.sched = clock.New()
		m.mt.AttachClock(m.sched)
		hier.AttachClock(m.sched)
		if m.ctrl != nil {
			m.ctrl.AttachClock(m.sched)
		}
		if m.bra != nil {
			m.bra.AttachClock(m.sched)
		}
	}
	return m
}

// registerObs wires the machine's components into a collector's registry.
func (m *machine) registerObs(o *obs.Collector) {
	m.mt.RegisterObs(o.Registry, "core.main")
	m.hier.RegisterObs(o.Registry, "cache")
	if ro, ok := m.pred.(interface {
		RegisterObs(*obs.Registry, string)
	}); ok {
		ro.RegisterObs(o.Registry, "bpred."+m.pred.Name())
	}
	if m.ctrl != nil {
		m.ctrl.RegisterObs(o.Registry, "phelps")
	}
	if m.bra != nil {
		m.bra.RegisterObs(o.Registry, "runahead")
	}
	if o.Trace != nil {
		m.mt.SetTracer(o.Trace)
	}
	s := o.Registry.Scope("sim")
	s.Counter("skipped_cycles", func() uint64 { return m.skipped })
	s.Gauge("skip_ratio", func() float64 {
		if c := m.mt.Stats.Cycles; c > 0 {
			return float64(m.skipped) / float64(c)
		}
		return 0
	})
	// Event-queue counters: attempts (quiescent-cycle pops), fired
	// (successful pops), posted/stale (queue churn), and skipped (cycles
	// jumped). All zero in oracle mode (no scheduler attached).
	cs := o.Registry.Scope("clock")
	sched := func() *clock.Scheduler { return m.sched }
	cs.Counter("attempts", func() uint64 {
		if s := sched(); s != nil {
			return s.Attempts
		}
		return 0
	})
	cs.Counter("fired", func() uint64 {
		if s := sched(); s != nil {
			return s.Fired
		}
		return 0
	})
	cs.Counter("posted", func() uint64 {
		if s := sched(); s != nil {
			return s.Posted
		}
		return 0
	})
	cs.Counter("stale", func() uint64 {
		if s := sched(); s != nil {
			return s.Stale
		}
		return 0
	})
	cs.Counter("skipped", func() uint64 { return m.skipped })
}

// skipCycles bulk-accounts n event-free cycles starting at from on every
// per-cycle counter a stepped loop would have touched.
func (m *machine) skipCycles(from, n uint64) {
	m.mt.SkipCycles(n)
	if m.ctrl != nil {
		m.ctrl.SkipCycles(from, n)
	} else if m.bra != nil {
		m.bra.SkipCycles(from, n)
	}
	m.skipped += n
}

// run advances the cycle loop until the core halts, maxInsts instructions
// have retired (0 = unbounded), now reaches maxCycles, the forward-progress
// watchdog fires, or a verification check fails (the latter two leave the
// diagnosis in m.failure). The clock (m.now) persists across calls, so
// sampled runs chain warmup and measurement phases on one machine.
func (m *machine) run(maxInsts, maxCycles uint64) runOutcome {
	// queued is true when the machine carries an event scheduler (newMachine
	// attaches one unless ForceStep or Checks pin the per-cycle oracle mode).
	// Components post their wakeups as first-class events during Cycle; the
	// tail of each iteration pops the next event and jumps straight to it.
	queued := m.sched != nil
	var iters uint64 // loop iterations, for the cancellation poll
	for ; ; m.now++ {
		// Cancellation poll, counted in loop iterations rather than cycles so
		// the latency stays wall-clock-bounded even when the event-driven
		// clock is jumping thousands of cycles per iteration.
		if m.done != nil {
			if iters++; iters&1023 == 0 {
				select {
				case <-m.done:
					return runCanceled
				default:
				}
			}
		}
		if m.mt.Halted() {
			return runDone
		}
		if maxInsts > 0 && m.mt.Stats.Retired >= maxInsts {
			return runDone
		}
		if m.now >= maxCycles {
			return runTimeout
		}
		if queued {
			m.sched.NewCycle(m.now)
		}
		m.lanes.Reset(m.cfg.Core)
		// The IQ and lanes are flexibly shared (Section IV-A). Helper
		// threads issue first: they are latency-critical (their lead is what
		// produces timely predictions) and naturally self-throttle at the
		// prediction-queue depth, returning bandwidth to the main thread at
		// the full-queue equilibrium.
		if m.ctrl != nil {
			m.ctrl.SetNow(m.now)
			m.ctrl.CycleEngines(m.now, &m.lanes)
			m.mt.Cycle(m.now, &m.lanes)
		} else if m.bra != nil {
			m.bra.SetNow(m.now)
			m.bra.CycleChains(m.now, &m.lanes)
			m.mt.Cycle(m.now, &m.lanes)
		} else {
			m.mt.Cycle(m.now, &m.lanes)
		}
		if m.cfg.Obs != nil {
			m.cfg.Obs.MaybeSample(m.mt.Stats.Cycles)
			// Schedule the next sample boundary as an event so a jump never
			// crosses it: Stats.Cycles advances 1:1 with executed+skipped
			// cycles, so the boundary in sample units maps directly onto the
			// machine clock. The boundary cycle is then executed, and
			// MaybeSample fires there exactly as in a stepped run.
			if queued {
				if at := m.cfg.Obs.NextSampleAt(); at != 0 {
					if c := m.mt.Stats.Cycles; at > c {
						m.sched.Post(clock.ObsSample, m.now+(at-c))
					}
				}
			}
		}
		if m.guard != nil {
			if err := m.guard.tick(m.now); err != nil {
				m.failure = err
				return runCheckFailed
			}
		}
		// Forward-progress watchdog: retirement must advance between polls.
		if m.stall != 0 && m.now&1023 == 0 {
			if r := m.mt.Stats.Retired; r != m.lastRetired {
				m.lastRetired, m.lastProgress = r, m.now
			} else if m.now-m.lastProgress >= m.stall {
				m.failure = fmt.Errorf("no instruction retired in %d cycles (cycle %d, %d retired) [%s]",
					m.now-m.lastProgress, m.now, r, m.mt.Occupancy())
				return runStalled
			}
		}
		// Event-driven clock: when no component marked the coming cycle busy,
		// pop the next scheduled event and jump straight to it, bulk-accounting
		// the provably event-free span (DESIGN.md · Event-driven clock).
		// Disabled by ForceStep and by Checks (the invariant audit wants to
		// see every cycle) — those modes run with no scheduler attached.
		if queued && !m.mt.Halted() && (maxInsts == 0 || m.mt.Stats.Retired < maxInsts) {
			if m.sched.Busy() {
				continue
			}
			from := m.now + 1
			if from >= maxCycles {
				continue
			}
			ne, ok := m.sched.NextAfter(from)
			if !ok || ne > maxCycles {
				// An idle machine with an empty queue can never act again
				// (every enabling state change posts an event or marks busy),
				// so jumping to the cycle limit is exact; the loop head
				// handles the timeout itself.
				ne = maxCycles
			}
			if ne <= from {
				continue
			}
			// Watchdog emulation in closed form: no instruction retires
			// inside an event-free span, so the only possible progress update
			// is at the span's first poll, and the only possible firing is at
			// the first poll past lastProgress+stall. If that lands inside
			// the span, stop exactly where stepping would have.
			if m.stall != 0 {
				if p0 := (from + 1023) &^ 1023; p0 < ne {
					r := m.mt.Stats.Retired
					if r != m.lastRetired {
						m.lastRetired, m.lastProgress = r, p0
					}
					fire := (m.lastProgress + m.stall + 1023) &^ 1023
					if fire < p0 {
						fire = p0
					}
					if fire < ne {
						m.skipCycles(from, fire-from+1)
						m.now = fire
						m.failure = fmt.Errorf("no instruction retired in %d cycles (cycle %d, %d retired) [%s]",
							m.now-m.lastProgress, m.now, r, m.mt.Occupancy())
						return runStalled
					}
				}
			}
			m.skipCycles(from, ne-from)
			m.now = ne - 1 // the loop increment lands on the event cycle
		}
	}
}

// resetStats clears every component's counters at a phase boundary
// (microarchitectural state — predictors, caches, the pipeline — stays
// warm).
func (m *machine) resetStats() {
	m.mt.ResetStats()
	m.hier.ResetStats()
	if m.ctrl != nil {
		m.ctrl.ResetStats()
	}
	if m.bra != nil {
		m.bra.ResetStats()
	}
	m.skipped = 0
}

// result assembles a Result from the machine's current counters.
func (m *machine) result(timedOut bool) Result {
	res := Result{
		Cycles:        m.mt.Stats.Cycles,
		Retired:       m.mt.Stats.Retired,
		CondBranches:  m.mt.Stats.CondBranches,
		Mispredicts:   m.mt.Stats.Mispredicts,
		QueuePreds:    m.mt.Stats.QueuePreds,
		QueueMisps:    m.mt.Stats.QueueMisps,
		Halted:        m.mt.Halted(),
		TimedOut:      timedOut,
		SkippedCycles: m.skipped,
		Cache:         m.hier.Stats,
	}
	if m.ctrl != nil {
		m.ctrl.FinalizeAttribution()
		res.Phelps = m.ctrl.Stats
		res.Epochs = m.ctrl.EpochIndex
	}
	if m.bra != nil {
		res.Runahead = m.bra.Stats
	}
	return res
}

// Run simulates a workload under a configuration, cycle-accurately from
// reset to HALT. The workload's memory is consumed: the run mutates it in
// place and clears w.Mem, so a second Run of the same Workload value returns
// ErrConsumed (build a fresh Workload per run — or hand a Spec to
// SampledRun, which rebuilds as needed).
//
// The error is nil for a clean, verified run. Otherwise it wraps ErrLivelock
// (MaxCycles exhausted), ErrStall (the pipeline stopped retiring), ErrCheck
// (an invariant or lockstep-oracle failure), or ErrVerify (wrong
// architectural results); the Result is populated either way with the
// metrics collected so far.
func Run(w *prog.Workload, cfg Config) (Result, error) {
	return RunCtx(context.Background(), w, cfg)
}

// RunCtx is Run under a context: when ctx is canceled the cycle loop stops
// within about a thousand iterations and RunCtx returns the metrics collected
// so far with a wrapped ErrCanceled. The daemon's job-cancel path rides on
// this; context.Background() reproduces Run exactly.
func RunCtx(ctx context.Context, w *prog.Workload, cfg Config) (Result, error) {
	if w.Mem == nil {
		return Result{}, fmt.Errorf("sim: %s: %w", w.Name, ErrConsumed)
	}
	if ctx.Err() != nil {
		return Result{}, fmt.Errorf("sim: %s: %w: %v", w.Name, ErrCanceled, context.Cause(ctx))
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 2_000_000_000
	}
	mem := w.Mem
	w.Mem = nil // consumed: the run mutates mem in place

	// The lockstep oracle snapshots the initial memory before the emulator
	// stages any store, giving the reference an isolated copy-on-write view.
	var orc *check.Oracle
	if cfg.Lockstep {
		img, err := mem.Snapshot()
		if err != nil {
			return Result{}, fmt.Errorf("sim: %s: lockstep snapshot: %w", w.Name, err)
		}
		orc = check.NewOracle(w.Prog, img)
	}

	hier := cache.New(cfg.Cache)
	e := emu.New(w.Prog, mem)
	pred := makePredictor(cfg.Predictor)

	m := newMachine(cfg, mem, e, pred, hier)
	m.done = ctx.Done()
	m.setupGuards(orc)
	if cfg.Obs != nil {
		m.registerObs(cfg.Obs)
	}

	outcome := m.run(cfg.MaxInsts, cfg.MaxCycles)
	if cfg.Obs != nil {
		cfg.Obs.Finish(m.mt.Stats.Cycles)
	}

	res := m.result(outcome == runTimeout)
	switch outcome {
	case runTimeout:
		return res, fmt.Errorf("sim: %s did not finish within %d cycles (retired %d): %w",
			w.Name, cfg.MaxCycles, res.Retired, ErrLivelock)
	case runStalled:
		return res, fmt.Errorf("sim: %s: %w: %v", w.Name, ErrStall, m.failure)
	case runCheckFailed:
		return res, fmt.Errorf("sim: %s: %w: %v", w.Name, ErrCheck, m.failure)
	case runCanceled:
		return res, fmt.Errorf("sim: %s: %w: %v", w.Name, ErrCanceled, context.Cause(ctx))
	}
	if orc != nil {
		// End-of-run audit: reference halted too, memories byte-identical
		// (full runs only — a MaxInsts-bounded run stops mid-stream).
		final := res.Halted && cfg.MaxInsts == 0
		if cerr := orc.Finish(mem, final); cerr != nil {
			return res, fmt.Errorf("sim: %s: %w: %v", w.Name, ErrCheck, cerr)
		}
	}
	if res.Halted && w.Verify != nil {
		if verr := w.Verify(mem); verr != nil {
			return res, fmt.Errorf("sim: %s: %w: %v", w.Name, ErrVerify, verr)
		}
	}
	return res, nil
}
