package sim

import (
	"testing"

	"phelps/internal/fuzzgen"
)

// FuzzDifferential is the differential harness (DESIGN.md · Verification):
// for any seed, the generated program must retire the identical
// architectural state under every timing mechanism — baseline, Phelps
// helper threads, Branch Runahead — with the lockstep oracle and invariant
// checks watching every cycle. The committed corpus
// (testdata/fuzz/FuzzDifferential) pins seeds exercising the paper's idioms
// via the fuzzgen feature mask; `go test -fuzz=FuzzDifferential` explores
// beyond it.
func FuzzDifferential(f *testing.F) {
	for _, seed := range []uint64{0, 3, 12, 23, 35, 55, 63, 0xdeadbeef} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		g, err := fuzzgen.New(seed)
		if err != nil {
			t.Fatalf("generator: %v", err)
		}
		configs := []struct {
			name string
			cfg  Config
		}{
			{"base", DefaultConfig()},
			{"phelps", PhelpsConfig(2_000)},
			{"runahead", func() Config {
				c := DefaultConfig()
				c.Mode = ModeRunahead
				c.Runahead.EpochLen = 2_000
				return c
			}()},
		}
		for _, c := range configs {
			cfg := c.cfg
			cfg.Checks = true
			cfg.Lockstep = true
			cfg.MaxCycles = 20_000_000
			res, err := Run(g.Workload(), cfg)
			if err != nil {
				t.Fatalf("seed %#x under %s: %v\nparams: %+v", seed, c.name, err, g.P)
			}
			if !res.Halted {
				t.Fatalf("seed %#x under %s: did not halt", seed, c.name)
			}
			// The main thread retires exactly the functional stream: its
			// dynamic instruction count is configuration-invariant.
			if res.Retired != g.Insts() {
				t.Fatalf("seed %#x under %s: retired %d insts, functional run executed %d",
					seed, c.name, res.Retired, g.Insts())
			}
		}
	})
}
