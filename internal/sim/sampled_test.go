package sim

import (
	"encoding/json"
	"os"
	"strconv"
	"testing"

	"phelps/internal/obs"
	"phelps/internal/prog"
)

// mustSampled runs SampledRun and fails the test on error.
func mustSampled(t *testing.T, spec Spec, cfg Config, sc SampleConfig) Result {
	t.Helper()
	r, err := SampledRun(spec, cfg, sc)
	if err != nil {
		t.Fatalf("SampledRun(%s): %v", spec.Name, err)
	}
	return r
}

// goldenBaseIPC loads the checked-in golden matrix and returns workload ->
// full-run IPC under the baseline config.
func goldenBaseIPC(t *testing.T) map[string]float64 {
	t.Helper()
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (%v); generate with UPDATE_GOLDEN=1", err)
	}
	var g goldenFile
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatalf("bad golden file: %v", err)
	}
	out := make(map[string]float64)
	for _, c := range g.Cells {
		if c.Config != CfgBase {
			continue
		}
		ipc, err := strconv.ParseFloat(c.IPC, 64)
		if err != nil {
			t.Fatalf("golden %s/%s: bad IPC %q", c.Workload, c.Config, c.IPC)
		}
		out[c.Workload] = ipc
	}
	return out
}

// TestSampledAccuracyVsGolden is the acceptance gate for sampled simulation:
// on every quick-profile workload, the SimPoint-reconstructed IPC must land
// within 10% of the full cycle-accurate run pinned in the golden file.
func TestSampledAccuracyVsGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("sampled accuracy sweep skipped in -short mode")
	}
	golden := goldenBaseIPC(t)
	for _, spec := range append(GapSpecs(true), SpecCPUSpecs(true)...) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			want, ok := golden[spec.Name]
			if !ok {
				t.Fatalf("no golden base cell for %s", spec.Name)
			}
			res := mustSampled(t, spec, mustConfig(CfgBase, spec.Epoch), SampleConfig{})
			got := res.IPC()
			errPct := (got - want) / want * 100
			rep := res.Sampled
			t.Logf("sampled IPC %.4f vs full %.4f (%+.2f%%), %d intervals of %d, %d points, fullrun=%v",
				got, want, errPct, rep.Intervals, rep.IntervalLen, len(rep.Points), rep.FullRun)
			if errPct < -10 || errPct > 10 {
				t.Errorf("sampled IPC %.4f off golden %.4f by %+.2f%% (limit 10%%)", got, want, errPct)
			}
		})
	}
}

// TestSampledRunFallbackTinyWorkload: workloads too short to chunk into
// MinIntervals intervals fall back to a full run, flagged in the report.
func TestSampledRunFallbackTinyWorkload(t *testing.T) {
	spec := Spec{
		Name:  "tiny",
		Build: func() *prog.Workload { return prog.PredictableLoop(1_000) },
	}
	res := mustSampled(t, spec, DefaultConfig(), SampleConfig{})
	if res.Sampled == nil || !res.Sampled.FullRun {
		t.Fatalf("tiny workload should fall back to a full run, report: %+v", res.Sampled)
	}
	if len(res.Sampled.Points) != 0 {
		t.Errorf("fallback run has %d points", len(res.Sampled.Points))
	}
	if !res.Halted {
		t.Error("fallback run did not halt")
	}
}

// TestSampledRunDeterminism: same spec, same SampleConfig, same Result —
// clustering is seeded and the machines are deterministic.
func TestSampledRunDeterminism(t *testing.T) {
	spec := Spec{
		Name:  "dl",
		Build: func() *prog.Workload { return prog.DelinquentLoop(30_000, 50, 1) },
	}
	a := mustSampled(t, spec, DefaultConfig(), SampleConfig{})
	b := mustSampled(t, spec, DefaultConfig(), SampleConfig{})
	if a.Cycles != b.Cycles || a.Retired != b.Retired || a.Mispredicts != b.Mispredicts {
		t.Errorf("sampled runs diverge: (%d cyc, %d ret, %d misp) vs (%d cyc, %d ret, %d misp)",
			a.Cycles, a.Retired, a.Mispredicts, b.Cycles, b.Retired, b.Mispredicts)
	}
	for i := range a.Sampled.Points {
		pa, pb := a.Sampled.Points[i], b.Sampled.Points[i]
		if pa != pb {
			t.Errorf("point %d differs: %+v vs %+v", i, pa, pb)
		}
	}
}

// TestSampledRunPointsShape sanity-checks the report invariants on a
// workload long enough to sample for real.
func TestSampledRunPointsShape(t *testing.T) {
	spec := Spec{
		Name:  "dl",
		Build: func() *prog.Workload { return prog.DelinquentLoop(30_000, 50, 1) },
	}
	res := mustSampled(t, spec, DefaultConfig(), SampleConfig{K: 3})
	rep := res.Sampled
	if rep.FullRun {
		t.Fatal("workload unexpectedly fell back to a full run")
	}
	// K scales the clustered points (at most 2K, see simpoint.Pick); the
	// mandatory cold-start point adds one more.
	if len(rep.Points) == 0 || len(rep.Points) > 7 {
		t.Fatalf("got %d points for K=3", len(rep.Points))
	}
	var wsum float64
	for _, p := range rep.Points {
		wsum += p.Weight
		if p.Measured == 0 || p.Cycles == 0 {
			t.Errorf("point %d measured nothing: %+v", p.Interval, p)
		}
		if p.StartInst != uint64(p.Interval)*rep.IntervalLen {
			t.Errorf("point %d: StartInst %d != interval*len %d", p.Interval, p.StartInst, uint64(p.Interval)*rep.IntervalLen)
		}
	}
	if wsum < 0.99 || wsum > 1.01 {
		t.Errorf("point weights sum to %.4f, want ~1", wsum)
	}
	if res.Retired != rep.TotalInsts {
		t.Errorf("Result.Retired %d != profiled total %d", res.Retired, rep.TotalInsts)
	}
}

// TestSampledRunRejectsObs: the observability collector is single-machine
// state; sampled runs must refuse it rather than race.
func TestSampledRunRejectsObs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Obs = obs.NewCollector(0)
	spec := Spec{
		Name:  "dl",
		Build: func() *prog.Workload { return prog.DelinquentLoop(30_000, 50, 1) },
	}
	if _, err := SampledRun(spec, cfg, SampleConfig{}); err == nil {
		t.Fatal("SampledRun accepted a Config with Obs set")
	}
}
