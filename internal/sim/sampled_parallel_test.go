package sim

import (
	"context"
	"errors"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"phelps/internal/cpu"
	"phelps/internal/prog"
)

// TestSampledParallelBitIdentical is the acceptance gate for parallel
// SimPoint measurement: on every quick-profile workload, the Result of a
// sampled run must be byte-for-byte identical (every counter, every float,
// every PointResult) for workers = 1, 2, and 8. Each point owns an isolated
// machine and the weighted reconstruction is a serial reduction in interval
// order, so scheduling must not be observable.
func TestSampledParallelBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel bit-identity sweep skipped in -short mode")
	}
	for _, spec := range append(GapSpecs(true), SpecCPUSpecs(true)...) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			cfg := mustConfig(CfgBase, spec.Epoch)
			serial := mustSampled(t, spec, cfg, SampleConfig{Workers: 1})
			for _, workers := range []int{2, 8} {
				par := mustSampled(t, spec, cfg, SampleConfig{Workers: workers})
				if !reflect.DeepEqual(serial, par) {
					t.Errorf("workers=%d diverged from serial:\nserial   %+v\nparallel %+v", workers, serial, par)
				}
			}
		})
	}
}

// TestSampledParallelCancel: cancellation at any phase — checkpoint-cache
// I/O, functional fast-forward, or between/inside parallel point
// measurements — surfaces as ErrCanceled, and the call returns promptly
// (measureAll waits out every started worker, so a return proves no leaks).
func TestSampledParallelCancel(t *testing.T) {
	t.Parallel()
	// Sized so the functional passes take far longer than the largest cancel
	// delay (see TestSampledRunCtxCanceled).
	spec := Spec{
		Name:  "long",
		Build: func() *prog.Workload { return prog.PredictableLoop(20_000_000) },
	}
	sc := SampleConfig{Workers: 8, Ckpts: NewCkptCache(t.TempDir()), CrashDir: t.TempDir()}
	for _, delay := range []time.Duration{0, 5 * time.Millisecond, 50 * time.Millisecond} {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, rerr := SampledRunCtx(ctx, spec, DefaultConfig(), sc)
			done <- rerr
		}()
		time.Sleep(delay)
		cancel()
		select {
		case rerr := <-done:
			if !errors.Is(rerr, ErrCanceled) {
				t.Fatalf("delay %v: err = %v, want ErrCanceled", delay, rerr)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("delay %v: sampled run did not stop within 10s of cancellation", delay)
		}
	}
}

// TestSampledParallelPanicContainment: a panic inside one point's
// measurement worker is contained into an ErrPanic error naming the SimPoint
// interval, with a crash dump on disk — it must not kill the process (a bare
// panic on a pool goroutine would) and must not wedge sibling workers (the
// run returns).
func TestSampledParallelPanicContainment(t *testing.T) {
	spec := Spec{
		Name:  "dl",
		Build: func() *prog.Workload { return prog.DelinquentLoop(30_000, 50, 1) },
	}
	cfg := DefaultConfig()
	// Learn the deterministic point layout, then aim a retirement-time panic
	// into the last point's measured window: exactly one worker trips it.
	clean := mustSampled(t, spec, cfg, SampleConfig{Workers: 8})
	pts := clean.Sampled.Points
	last := pts[len(pts)-1]
	if last.Interval == 0 {
		t.Fatalf("expected a non-cold last point, got %+v", last)
	}
	crashDir := t.TempDir()
	cfg.Faults = &cpu.FaultInjection{PanicAtSeq: last.StartInst + 100}
	_, err := SampledRun(spec, cfg, SampleConfig{Workers: 8, CrashDir: crashDir})
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("injected panic not contained: %v", err)
	}
	want := "SimPoint interval"
	if !strings.Contains(err.Error(), want) {
		t.Errorf("error does not name the panicking interval: %v", err)
	}
	files, derr := os.ReadDir(crashDir)
	if derr != nil || len(files) == 0 {
		t.Fatalf("no crash dump written (err=%v)", derr)
	}
	// The faulted seq lands in exactly one measured window, so the error
	// names that interval specifically.
	if !strings.Contains(err.Error(), "interval "+strconv.Itoa(last.Interval)) {
		t.Errorf("error should name interval %d: %v", last.Interval, err)
	}
}
