package graph

// Native Go reference implementations of the GAP kernels. The assembly
// workloads in internal/prog are verified against these: after a timing or
// functional run, the workload's memory-resident results must match.

// MainComponentSource returns a vertex in the largest connected component
// (the canonical BFS/SSSP source for generated graphs, mirroring GAP's
// pick-a-connected-source behavior).
func (g *Graph) MainComponentSource() int {
	comp := g.ShiloachVishkinCC()
	count := make(map[uint32]int)
	for _, c := range comp {
		count[c]++
	}
	best, bestN := uint32(0), -1
	for c, n := range count {
		if n > bestN || (n == bestN && c < best) {
			best, bestN = c, n
		}
	}
	for v, c := range comp {
		if c == best {
			return v
		}
	}
	return 0
}

// BFSParents runs breadth-first search from src and returns the parent array:
// parent[v] = parent vertex, parent[src] = src, -1 if unreachable.
func (g *Graph) BFSParents(src int) []int64 {
	parent := make([]int64, g.N)
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = int64(src)
	frontier := []uint32{uint32(src)}
	for len(frontier) > 0 {
		var next []uint32
		for _, u := range frontier {
			for _, v := range g.Neighbors(int(u)) {
				if parent[v] < 0 {
					parent[v] = int64(u)
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return parent
}

// BFSDepths returns hop distances from src (-1 if unreachable).
func (g *Graph) BFSDepths(src int) []int64 {
	depth := make([]int64, g.N)
	for i := range depth {
		depth[i] = -1
	}
	depth[src] = 0
	frontier := []uint32{uint32(src)}
	for d := int64(1); len(frontier) > 0; d++ {
		var next []uint32
		for _, u := range frontier {
			for _, v := range g.Neighbors(int(u)) {
				if depth[v] < 0 {
					depth[v] = d
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return depth
}

// ShiloachVishkinCC computes connected components with the label-propagation
// variant GAP's cc_sv uses: repeatedly hook smaller labels, then pointer-jump
// until no change. Returns comp labels.
func (g *Graph) ShiloachVishkinCC() []uint32 {
	comp := make([]uint32, g.N)
	for i := range comp {
		comp[i] = uint32(i)
	}
	for changed := true; changed; {
		changed = false
		for u := 0; u < g.N; u++ {
			for _, v := range g.Neighbors(u) {
				cu, cv := comp[u], comp[v]
				if cu < cv {
					comp[cv] = cu
					changed = true
				}
			}
		}
		for u := 0; u < g.N; u++ {
			for comp[u] != comp[comp[u]] {
				comp[u] = comp[comp[u]]
			}
		}
	}
	return comp
}

// PageRank runs iters iterations of synchronous PageRank with damping d,
// in fixed-point arithmetic (scale 1<<20) so the assembly kernel (integer
// ISA) can be verified bit-exactly. Returns scaled scores.
func (g *Graph) PageRank(iters int, dNum, dDen int64) []int64 {
	const scale = 1 << 20
	n := int64(g.N)
	scores := make([]int64, g.N)
	next := make([]int64, g.N)
	for i := range scores {
		scores[i] = scale / n
	}
	base := (dDen - dNum) * (scale / n) / dDen
	for it := 0; it < iters; it++ {
		for v := 0; v < g.N; v++ {
			var sum int64
			for _, u := range g.Neighbors(v) {
				deg := int64(g.Degree(int(u)))
				if deg > 0 {
					sum += scores[u] / deg
				}
			}
			next[v] = base + dNum*sum/dDen
		}
		scores, next = next, scores
	}
	return scores
}

// BellmanFordSSSP computes single-source shortest paths using |V|-bounded
// relaxation rounds over all edges (the weighted graph must have Weights).
// Returns distances, with unreachable = maxDist sentinel.
func (g *Graph) BellmanFordSSSP(src int) []int64 {
	const inf = int64(1) << 40
	dist := make([]int64, g.N)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	for round := 0; round < g.N; round++ {
		changed := false
		for u := 0; u < g.N; u++ {
			du := dist[u]
			if du == inf {
				continue
			}
			off := g.Offsets[u]
			for i, v := range g.Neighbors(u) {
				w := int64(g.Weights[int(off)+i])
				if du+w < dist[v] {
					dist[v] = du + w
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

// TriangleCount returns the number of triangles (each counted once), using
// the standard ordered-intersection method over sorted adjacency lists.
func (g *Graph) TriangleCount() int64 {
	var total int64
	for u := 0; u < g.N; u++ {
		nu := g.Neighbors(u)
		for _, v := range nu {
			if int(v) <= u {
				continue
			}
			nv := g.Neighbors(int(v))
			// Count common neighbors w with w > v (ordered intersection).
			i, j := 0, 0
			for i < len(nu) && j < len(nv) {
				a, b := nu[i], nv[j]
				switch {
				case a == b:
					if a > v {
						total++
					}
					i++
					j++
				case a < b:
					i++
				default:
					j++
				}
			}
		}
	}
	return total
}

// BCApprox computes Brandes-style betweenness-centrality contributions from a
// set of source vertices, in fixed-point (scale 1<<12), matching the
// integer-only assembly kernel. Returns scaled centrality scores.
func (g *Graph) BCApprox(sources []int) []int64 {
	const scale = int64(1) << 12
	bc := make([]int64, g.N)
	for _, s := range sources {
		// Forward phase: BFS computing sigma (shortest path counts) and depth.
		depth := make([]int64, g.N)
		sigma := make([]int64, g.N)
		for i := range depth {
			depth[i] = -1
		}
		depth[s] = 0
		sigma[s] = 1
		order := []uint32{uint32(s)}
		for qi := 0; qi < len(order); qi++ {
			u := order[qi]
			for _, v := range g.Neighbors(int(u)) {
				if depth[v] < 0 {
					depth[v] = depth[u] + 1
					order = append(order, v)
				}
				if depth[v] == depth[u]+1 {
					sigma[v] += sigma[u]
				}
			}
		}
		// Backward phase: accumulate dependencies in reverse BFS order.
		delta := make([]int64, g.N) // scaled by `scale`
		for qi := len(order) - 1; qi >= 0; qi-- {
			u := order[qi]
			for _, v := range g.Neighbors(int(u)) {
				if depth[v] == depth[u]+1 && sigma[v] > 0 {
					delta[u] += sigma[u] * (scale + delta[v]) / sigma[v]
				}
			}
			if int(u) != s {
				bc[u] += delta[u]
			}
		}
	}
	return bc
}
