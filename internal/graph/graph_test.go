package graph

import (
	"testing"
	"testing/quick"
)

func TestFromEdgesDedupSortNoSelfLoops(t *testing.T) {
	edges := []edge{{0, 1}, {0, 1}, {1, 2}, {2, 2}, {0, 3}, {3, 0}}
	g := fromEdges(4, edges, false)
	if g.N != 4 {
		t.Fatalf("N = %d", g.N)
	}
	n0 := g.Neighbors(0)
	if len(n0) != 2 || n0[0] != 1 || n0[1] != 3 {
		t.Errorf("neighbors(0) = %v, want [1 3]", n0)
	}
	if g.Degree(2) != 0 {
		t.Errorf("self-loop not dropped: deg(2) = %d", g.Degree(2))
	}
}

func TestSymmetrize(t *testing.T) {
	g := fromEdges(3, []edge{{0, 1}, {1, 2}}, true)
	for _, c := range []struct{ u, v int }{{0, 1}, {1, 0}, {1, 2}, {2, 1}} {
		found := false
		for _, x := range g.Neighbors(c.u) {
			if int(x) == c.v {
				found = true
			}
		}
		if !found {
			t.Errorf("edge %d->%d missing after symmetrize", c.u, c.v)
		}
	}
}

func TestRoadCharacteristics(t *testing.T) {
	g := Road(60, 60, 1)
	if g.N != 3600 {
		t.Fatalf("N = %d", g.N)
	}
	d := g.AvgDegree()
	if d < 2.0 || d > 4.0 {
		t.Errorf("road avg degree = %.2f, want ~2.9", d)
	}
	// Max degree must stay small (grid + few shortcuts).
	maxDeg := 0
	for v := 0; v < g.N; v++ {
		if g.Degree(v) > maxDeg {
			maxDeg = g.Degree(v)
		}
	}
	if maxDeg > 10 {
		t.Errorf("road max degree = %d, unexpectedly large", maxDeg)
	}
}

func TestWebIsHeavyTailed(t *testing.T) {
	g := Web(2000, 2, 7)
	maxDeg := 0
	for v := 0; v < g.N; v++ {
		if g.Degree(v) > maxDeg {
			maxDeg = g.Degree(v)
		}
	}
	if maxDeg < 20 {
		t.Errorf("web max degree = %d, expected a hub >= 20", maxDeg)
	}
}

func TestKronShape(t *testing.T) {
	g := Kron(10, 8, 3)
	if g.N != 1024 {
		t.Fatalf("N = %d", g.N)
	}
	if g.NumEdges() == 0 {
		t.Fatal("no edges")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Road(30, 30, 42)
	b := Road(30, 30, 42)
	if len(a.Adj) != len(b.Adj) {
		t.Fatal("non-deterministic road generator")
	}
	for i := range a.Adj {
		if a.Adj[i] != b.Adj[i] {
			t.Fatal("non-deterministic road adjacency")
		}
	}
}

func TestRandDistribution(t *testing.T) {
	r := NewRand(9)
	var buckets [4]int
	for i := 0; i < 4000; i++ {
		buckets[r.Intn(4)]++
	}
	for i, c := range buckets {
		if c < 800 || c > 1200 {
			t.Errorf("bucket %d = %d, badly skewed", i, c)
		}
	}
	if NewRand(0).Next() == 0 {
		t.Error("zero seed must be remapped")
	}
}

// Property: CSR invariants hold for arbitrary random graphs.
func TestCSRInvariants_Property(t *testing.T) {
	f := func(seed uint64) bool {
		g := Uniform(50, 120, seed)
		if len(g.Offsets) != g.N+1 || g.Offsets[0] != 0 {
			return false
		}
		for v := 0; v < g.N; v++ {
			if g.Offsets[v] > g.Offsets[v+1] {
				return false
			}
			ns := g.Neighbors(v)
			for i := range ns {
				if int(ns[i]) == v { // no self loops
					return false
				}
				if i > 0 && ns[i-1] >= ns[i] { // sorted, deduped
					return false
				}
			}
		}
		return int(g.Offsets[g.N]) == len(g.Adj)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: symmetrized graphs have symmetric adjacency.
func TestSymmetry_Property(t *testing.T) {
	f := func(seed uint64) bool {
		g := Uniform(40, 80, seed)
		for u := 0; u < g.N; u++ {
			for _, v := range g.Neighbors(u) {
				found := false
				for _, w := range g.Neighbors(int(v)) {
					if int(w) == u {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBFSParentsAndDepths(t *testing.T) {
	// Path graph 0-1-2-3 plus isolated 4.
	g := fromEdges(5, []edge{{0, 1}, {1, 2}, {2, 3}}, true)
	par := g.BFSParents(0)
	if par[0] != 0 || par[1] != 0 || par[2] != 1 || par[3] != 2 || par[4] != -1 {
		t.Errorf("parents = %v", par)
	}
	dep := g.BFSDepths(0)
	want := []int64{0, 1, 2, 3, -1}
	for i := range want {
		if dep[i] != want[i] {
			t.Errorf("depth[%d] = %d, want %d", i, dep[i], want[i])
		}
	}
}

// Property: BFS depth of any vertex differs from its parent's depth by
// exactly 1, and every reachable vertex has a reachable parent.
func TestBFSConsistency_Property(t *testing.T) {
	f := func(seed uint64) bool {
		g := Uniform(60, 100, seed)
		par := g.BFSParents(0)
		dep := g.BFSDepths(0)
		for v := 0; v < g.N; v++ {
			if (par[v] < 0) != (dep[v] < 0) {
				return false
			}
			if v != 0 && par[v] >= 0 {
				if dep[v] != dep[par[v]]+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestShiloachVishkinCC(t *testing.T) {
	// Two components: {0,1,2} and {3,4}.
	g := fromEdges(5, []edge{{0, 1}, {1, 2}, {3, 4}}, true)
	comp := g.ShiloachVishkinCC()
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Errorf("component 1 split: %v", comp)
	}
	if comp[3] != comp[4] {
		t.Errorf("component 2 split: %v", comp)
	}
	if comp[0] == comp[3] {
		t.Errorf("components merged: %v", comp)
	}
}

// Property: CC labels agree with BFS reachability.
func TestCCMatchesBFS_Property(t *testing.T) {
	f := func(seed uint64) bool {
		g := Uniform(40, 50, seed)
		comp := g.ShiloachVishkinCC()
		par := g.BFSParents(0)
		for v := 0; v < g.N; v++ {
			sameComp := comp[v] == comp[0]
			reachable := par[v] >= 0
			if sameComp != reachable {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPageRankConserves(t *testing.T) {
	g := Uniform(50, 200, 5)
	scores := g.PageRank(10, 85, 100)
	var sum int64
	for _, s := range scores {
		sum += s
	}
	// Total mass stays near 1.0 (scale 1<<20), within fixed-point loss and
	// dangling-vertex leakage.
	if sum < (1<<20)/2 || sum > (1<<20)+(1<<16) {
		t.Errorf("pagerank mass = %d (scale %d)", sum, 1<<20)
	}
}

func TestBellmanFordSimple(t *testing.T) {
	g := fromEdges(4, []edge{{0, 1}, {1, 2}, {0, 3}, {3, 2}}, true)
	g.Weights = make([]uint32, len(g.Adj))
	// Set all weights to 1 except make 0-3 and 3-2 cheaper sum than 0-1-2?
	for i := range g.Weights {
		g.Weights[i] = 2
	}
	dist := g.BellmanFordSSSP(0)
	if dist[0] != 0 || dist[1] != 2 || dist[2] != 4 || dist[3] != 2 {
		t.Errorf("dist = %v", dist)
	}
}

func TestTriangleCount(t *testing.T) {
	// Triangle 0-1-2 plus a pendant 3.
	g := fromEdges(4, []edge{{0, 1}, {1, 2}, {0, 2}, {2, 3}}, true)
	if n := g.TriangleCount(); n != 1 {
		t.Errorf("triangles = %d, want 1", n)
	}
	// K4 has 4 triangles.
	k4 := fromEdges(4, []edge{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}, true)
	if n := k4.TriangleCount(); n != 4 {
		t.Errorf("K4 triangles = %d, want 4", n)
	}
}

func TestBCApproxPathGraph(t *testing.T) {
	// Path 0-1-2: vertex 1 lies on the single shortest path 0..2.
	g := fromEdges(3, []edge{{0, 1}, {1, 2}}, true)
	bc := g.BCApprox([]int{0, 2})
	if bc[1] <= bc[0] || bc[1] <= bc[2] {
		t.Errorf("bc = %v; middle vertex should dominate", bc)
	}
}

func TestWithRandomWeights(t *testing.T) {
	g := Uniform(20, 40, 11).WithRandomWeights(3, 7)
	if len(g.Weights) != len(g.Adj) {
		t.Fatalf("weights len %d != adj len %d", len(g.Weights), len(g.Adj))
	}
	for _, w := range g.Weights {
		if w < 1 || w > 7 {
			t.Errorf("weight %d out of [1,7]", w)
		}
	}
}
