package graph

// Generators for the three input classes the paper evaluates bfs on
// (Fig. 15b): a road network (roadNet-CA-like), a web graph
// (web-google-like), and a Kronecker-style synthetic (kron-like).

// Road generates a synthetic road network: a W×H grid of intersections with
// most grid edges present, a fraction removed, and a few long "highway"
// shortcuts. This matches roadNet-CA's characteristics that matter for the
// paper: very low average degree (~2.8), huge diameter, and short,
// unpredictable per-vertex adjacency lists (the nested-loop idiom of Fig. 2).
func Road(w, h int, seed uint64) *Graph {
	r := NewRand(seed)
	n := w * h
	var edges []edge
	id := func(x, y int) uint32 { return uint32(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			// Keep ~72% of east edges and ~72% of south edges: mean
			// symmetrized degree ≈ 2.9, with per-vertex variance.
			if x+1 < w && r.Float64() < 0.72 {
				edges = append(edges, edge{id(x, y), id(x+1, y)})
			}
			if y+1 < h && r.Float64() < 0.72 {
				edges = append(edges, edge{id(x, y), id(x, y+1)})
			}
		}
	}
	// Sparse highway shortcuts (~0.5% of vertices).
	for i := 0; i < n/200; i++ {
		u := uint32(r.Intn(n))
		v := uint32(r.Intn(n))
		edges = append(edges, edge{u, v})
	}
	return fromEdges(n, edges, true)
}

// Web generates a web-like graph with a heavy-tailed degree distribution via
// preferential attachment: each new vertex links to m earlier vertices chosen
// proportionally to degree. Low diameter, a few huge-degree hubs.
func Web(n, m int, seed uint64) *Graph {
	r := NewRand(seed)
	var edges []edge
	// targets holds one entry per edge endpoint; sampling uniformly from it
	// implements preferential attachment.
	targets := make([]uint32, 0, 2*n*m)
	targets = append(targets, 0)
	for v := 1; v < n; v++ {
		for j := 0; j < m; j++ {
			t := targets[r.Intn(len(targets))]
			edges = append(edges, edge{uint32(v), t})
			targets = append(targets, uint32(v), t)
		}
	}
	return fromEdges(n, edges, true)
}

// Kron generates a Kronecker-style graph (GAP's synthetic input family):
// 2^scale vertices, edgeFactor edges per vertex, with R-MAT corner
// probabilities (0.57, 0.19, 0.19, 0.05).
func Kron(scale, edgeFactor int, seed uint64) *Graph {
	r := NewRand(seed)
	n := 1 << scale
	nEdges := n * edgeFactor
	edges := make([]edge, 0, nEdges)
	for i := 0; i < nEdges; i++ {
		var u, v uint32
		for b := 0; b < scale; b++ {
			p := r.Float64()
			switch {
			case p < 0.57:
				// top-left: no bits set
			case p < 0.76:
				v |= 1 << b
			case p < 0.95:
				u |= 1 << b
			default:
				u |= 1 << b
				v |= 1 << b
			}
		}
		edges = append(edges, edge{u, v})
	}
	return fromEdges(n, edges, true)
}

// Uniform generates an Erdős–Rényi-style random graph with the given number
// of undirected edges.
func Uniform(n, nEdges int, seed uint64) *Graph {
	r := NewRand(seed)
	edges := make([]edge, 0, nEdges)
	for i := 0; i < nEdges; i++ {
		edges = append(edges, edge{uint32(r.Intn(n)), uint32(r.Intn(n))})
	}
	return fromEdges(n, edges, true)
}
