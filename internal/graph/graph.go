// Package graph provides the graph substrate for the GAP-style workloads:
// CSR representation and synthetic generators standing in for the paper's
// input datasets (roadNet-CA, web-google, kron).
package graph

import "sort"

// Graph is an unweighted directed graph in CSR form. For the GAP-style
// kernels the graphs are symmetrized (every edge stored in both directions).
type Graph struct {
	N       int      // number of vertices
	Offsets []uint32 // len N+1; neighbors of v are Neighbors[Offsets[v]:Offsets[v+1]]
	Adj     []uint32 // concatenated adjacency lists, sorted per vertex
	Weights []uint32 // optional, parallel to Adj (for SSSP); nil if unweighted
}

// Degree returns the out-degree of v.
func (g *Graph) Degree(v int) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors returns the adjacency slice of v.
func (g *Graph) Neighbors(v int) []uint32 {
	return g.Adj[g.Offsets[v]:g.Offsets[v+1]]
}

// NumEdges returns the number of stored directed edges.
func (g *Graph) NumEdges() int { return len(g.Adj) }

// AvgDegree returns the mean out-degree.
func (g *Graph) AvgDegree() float64 {
	if g.N == 0 {
		return 0
	}
	return float64(len(g.Adj)) / float64(g.N)
}

// edge is a directed edge used during construction.
type edge struct{ u, v uint32 }

// fromEdges builds a CSR graph from an edge list, deduplicating and sorting
// adjacency lists. Self-loops are dropped. If symmetric, both directions are
// stored.
func fromEdges(n int, edges []edge, symmetric bool) *Graph {
	if symmetric {
		rev := make([]edge, 0, len(edges))
		for _, e := range edges {
			rev = append(rev, edge{e.v, e.u})
		}
		edges = append(edges, rev...)
	}
	deg := make([]uint32, n+1)
	for _, e := range edges {
		if e.u != e.v {
			deg[e.u+1]++
		}
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	adj := make([]uint32, deg[n])
	next := make([]uint32, n)
	for _, e := range edges {
		if e.u == e.v {
			continue
		}
		adj[deg[e.u]+next[e.u]] = e.v
		next[e.u]++
	}
	// Sort and dedup each adjacency list.
	offsets := make([]uint32, n+1)
	w := 0
	for v := 0; v < n; v++ {
		offsets[v] = uint32(w)
		lo, hi := deg[v], deg[v]+next[v]
		list := adj[lo:hi]
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		var prev uint32 = ^uint32(0)
		for _, x := range list {
			if x != prev {
				adj[w] = x
				w++
				prev = x
			}
		}
	}
	offsets[n] = uint32(w)
	return &Graph{N: n, Offsets: offsets, Adj: adj[:w]}
}

// WithRandomWeights attaches deterministic pseudo-random edge weights in
// [1, maxW] for SSSP.
func (g *Graph) WithRandomWeights(seed uint64, maxW uint32) *Graph {
	r := NewRand(seed)
	ws := make([]uint32, len(g.Adj))
	for i := range ws {
		ws[i] = 1 + uint32(r.Next()%uint64(maxW))
	}
	g.Weights = ws
	return g
}

// Rand is a small deterministic xorshift64* PRNG used by generators and
// workload data initialization (stdlib-only, reproducible across runs).
type Rand struct{ s uint64 }

// NewRand returns a PRNG seeded with seed (zero is remapped).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{s: seed}
}

// Next returns the next 64-bit pseudo-random value.
func (r *Rand) Next() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("graph: Intn with n <= 0")
	}
	return int(r.Next() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Next()>>11) / float64(1<<53)
}
