// Package fuzzgen generates seeded random workloads for differential
// testing (DESIGN.md · Verification): small loop kernels built from the
// paper's idioms — guarded/guarding branch pairs (b1/b2 of Fig. 1),
// influential stores (s1), loop-carried store→load dependences, short inner
// countdown loops — with random ALU filler between them.
//
// Every generated program terminates by construction, regardless of the
// random data it reads:
//
//   - the outer loop is counted (at most maxOuterTrips trips),
//   - the inner loop counts a value masked to [0, 15] down to zero,
//   - every other branch is forward-only within one iteration,
//   - all addressing is base + (index & mask)*8 over power-of-two arrays,
//     so no access escapes its region.
//
// The expected architectural results come from a functional emulator run at
// generation time; the Workload's Verify closure compares the final
// checksum and both data arrays cell-by-cell, so a timing run of any
// configuration (baseline, Phelps, runahead) is checked end-to-end against
// the functional semantics. Workload() builds a fresh memory each call —
// one generator can feed any number of differential runs.
package fuzzgen

import (
	"fmt"

	"phelps/internal/asm"
	"phelps/internal/emu"
	"phelps/internal/graph"
	"phelps/internal/isa"
	"phelps/internal/prog"
)

// Generation bounds. Small on purpose: differential fuzzing wants many
// distinct programs per second, and the idioms show up at any scale.
const (
	maxOuterTrips = 64 // counted outer loop
	innerMask     = 15 // inner countdown counts (v & innerMask) .. 0
	cellsLog2     = 6  // data arrays have 64 8-byte cells
	cells         = 1 << cellsLog2
	addrMask      = cells - 1
)

// Params describes the shape drawn from a seed. The low seed bits map
// directly onto features so the committed fuzz corpus can pin specific
// idioms: bits 0-1 = guarded branch pairs, bits 2-3 = stores, bit 4 =
// loop-carried store→load; everything else (trip count, filler ops, data)
// derives from the whole seed through the PRNG.
type Params struct {
	Seed         uint64
	GuardedPairs int  // b1/b2 pairs per iteration (0..3)
	Stores       int  // guarded stores per iteration (0..3)
	LoopCarried  bool // stores write the loaded-from array (waymap idiom)
	InnerLoop    bool // bounded inner countdown loop
	OuterTrips   int
	Filler       int // random ALU instructions per iteration
}

// paramsFor expands a seed deterministically.
func paramsFor(seed uint64) Params {
	r := graph.NewRand(seed ^ 0x9e3779b97f4a7c15)
	return Params{
		Seed:         seed,
		GuardedPairs: int(seed & 3),
		Stores:       int(seed >> 2 & 3),
		LoopCarried:  seed&16 != 0,
		InnerLoop:    seed&32 != 0,
		OuterTrips:   8 + r.Intn(maxOuterTrips-7),
		Filler:       2 + r.Intn(6),
	}
}

// Gen is one generated program plus its expected architectural results.
type Gen struct {
	P    Params
	Prog *isa.Program

	dataInit [cells]int64 // initial contents of the two arrays
	auxInit  [cells]int64

	wantChecksum int64
	wantData     [cells]int64 // expected final contents
	wantAux      [cells]int64
	insts        uint64 // dynamic instructions of the functional run
}

// scratch registers drawn from for ALU filler; the structural registers
// (S0-S3, A7, T5, T6) are reserved by the generator.
var pool = []isa.Reg{
	isa.T0, isa.T1, isa.T2, isa.T3, isa.T4,
	isa.A0, isa.A1, isa.A2, isa.A3, isa.A4, isa.A5, isa.A6,
}

// New generates the program for a seed and computes its expected results
// with a functional run. The error is a generator bug (a non-terminating or
// unbuildable program), never a property of the seed.
func New(seed uint64) (*Gen, error) {
	g := &Gen{P: paramsFor(seed)}
	r := graph.NewRand(seed)
	for i := range g.dataInit {
		g.dataInit[i] = int64(r.Next() % 7) // small values: branches stay biased-random
		g.auxInit[i] = int64(r.Next() % 5)
	}
	g.Prog = g.build(r)

	// Reference run: functional execution on a fresh memory is the ground
	// truth every timing configuration must reproduce.
	mem, dataA, auxA, out := g.memory()
	bound := uint64(g.P.OuterTrips) * 200 * (innerMask + 2) // far above any generatable path
	res := emu.Run(g.Prog, mem, bound)
	if !res.Reached {
		return nil, fmt.Errorf("fuzzgen: seed %#x: program did not halt in %d insts", seed, bound)
	}
	g.insts = res.Insts
	g.wantChecksum = mem.I64(out)
	for i := 0; i < cells; i++ {
		g.wantData[i] = mem.I64(dataA + uint64(i)*8)
		g.wantAux[i] = mem.I64(auxA + uint64(i)*8)
	}
	return g, nil
}

// Insts returns the dynamic instruction count of the reference run.
func (g *Gen) Insts() uint64 { return g.insts }

// memory builds a fresh initialized memory and returns the region bases.
func (g *Gen) memory() (mem *emu.Memory, data, aux, out uint64) {
	mem = emu.NewMemory()
	al := prog.NewAlloc()
	data = al.Array(cells, 8)
	aux = al.Array(cells, 8)
	out = al.Array(1, 8)
	for i := 0; i < cells; i++ {
		mem.SetI64(data+uint64(i)*8, g.dataInit[i])
		mem.SetI64(aux+uint64(i)*8, g.auxInit[i])
	}
	return mem, data, aux, out
}

// Workload builds a runnable workload with fresh memory. Call it once per
// run (sim.Run consumes workload memory).
func (g *Gen) Workload() *prog.Workload {
	mem, dataA, auxA, out := g.memory()
	return &prog.Workload{
		Name: fmt.Sprintf("fuzz-%016x", g.P.Seed),
		Prog: g.Prog,
		Mem:  mem,
		Verify: func(m *emu.Memory) error {
			if got := m.I64(out); got != g.wantChecksum {
				return fmt.Errorf("checksum: got %d, want %d", got, g.wantChecksum)
			}
			for i := 0; i < cells; i++ {
				if got := m.I64(dataA + uint64(i)*8); got != g.wantData[i] {
					return fmt.Errorf("data[%d]: got %d, want %d", i, got, g.wantData[i])
				}
				if got := m.I64(auxA + uint64(i)*8); got != g.wantAux[i] {
					return fmt.Errorf("aux[%d]: got %d, want %d", i, got, g.wantAux[i])
				}
			}
			return nil
		},
		Labels: g.Prog.Labels,
	}
}

// build emits the program. Register discipline: S0 = data base, S1 = outer
// index, S2 = trip count, S3 = checksum, A7 = inner counter, S4 = aux base,
// T5/T6 = address/value temps, pool = filler scratch.
func (g *Gen) build(r *graph.Rand) *isa.Program {
	// The code image needs the data addresses; rebuild the same allocation
	// sequence memory() uses (Alloc is deterministic).
	al := prog.NewAlloc()
	dataA := al.Array(cells, 8)
	auxA := al.Array(cells, 8)
	out := al.Array(1, 8)

	b := asm.New(prog.CodeBase)
	b.Li(isa.S0, int64(dataA))
	b.Li(isa.S4, int64(auxA))
	b.Li(isa.S1, 0)
	b.Li(isa.S2, int64(g.P.OuterTrips))
	b.Li(isa.S3, 0)
	for _, p := range pool {
		b.Li(p, int64(r.Next()&0xffff))
	}

	label := 0
	fresh := func(prefix string) string {
		label++
		return fmt.Sprintf("%s%d", prefix, label)
	}
	// loadCell emits rd = array[(idxReg + disp) & mask] through T5.
	loadCell := func(rd isa.Reg, base isa.Reg, idx isa.Reg, disp int64) {
		b.Addi(isa.T5, idx, disp)
		b.Andi(isa.T5, isa.T5, addrMask)
		b.Slli(isa.T5, isa.T5, 3)
		b.Add(isa.T5, base, isa.T5)
		b.Ld(rd, isa.T5, 0)
	}
	// storeCell emits array[(idxReg + disp) & mask] = rs through T5.
	storeCell := func(rs isa.Reg, base isa.Reg, idx isa.Reg, disp int64) {
		b.Addi(isa.T5, idx, disp)
		b.Andi(isa.T5, isa.T5, addrMask)
		b.Slli(isa.T5, isa.T5, 3)
		b.Add(isa.T5, base, isa.T5)
		b.Sd(rs, isa.T5, 0)
	}
	filler := func(n int) {
		for k := 0; k < n; k++ {
			rd := pool[r.Intn(len(pool))]
			rs1 := pool[r.Intn(len(pool))]
			rs2 := pool[r.Intn(len(pool))]
			switch r.Intn(7) {
			case 0:
				b.Add(rd, rs1, rs2)
			case 1:
				b.Sub(rd, rs1, rs2)
			case 2:
				b.Xor(rd, rs1, rs2)
			case 3:
				b.Mul(rd, rs1, rs2)
			case 4:
				b.Addi(rd, rs1, int64(r.Intn(255))-127)
			case 5:
				b.Xori(rd, rs1, int64(r.Next()&0xfff))
			default:
				b.Slli(rd, rs1, int64(1+r.Intn(5)))
			}
			// Fold filler into the checksum so dead code cannot hide a
			// wrong-path register leak.
			if k == n-1 {
				b.Add(isa.S3, isa.S3, rd)
			}
		}
	}

	b.Label("outer")
	// v = data[i & mask]: the delinquent load all guards key off.
	loadCell(isa.T6, isa.S0, isa.S1, 0)
	filler(g.P.Filler)

	// Guarded pairs: b1 (data-dependent on v) guarding b2 (dependent on a
	// second load), guarding a checksum update and optionally a store.
	stores := g.P.Stores
	for pair := 0; pair < g.P.GuardedPairs; pair++ {
		skip := fresh("skip")
		// b1: v's low bit decides; distinct bit per pair keeps them
		// independent and ~50/50 on the small random cell values.
		b.Andi(isa.T0, isa.T6, 1<<uint(pair))
		b.Label(fresh("b1_"))
		b.Beq(isa.T0, isa.X0, skip)
		loadCell(isa.T1, isa.S4, isa.S1, int64(pair+1)) // second load for b2
		b.Label(fresh("b2_"))
		b.Beq(isa.T1, isa.X0, skip) // b2: guarded by b1
		b.Add(isa.S3, isa.S3, isa.T1)
		if stores > 0 {
			stores--
			// s1: influential store, guarded by b1 && b2. Loop-carried mode
			// writes the array b1's load reads (the waymap idiom: future b1
			// outcomes depend on this store); otherwise it writes aux.
			base := isa.S4
			if g.P.LoopCarried {
				base = isa.S0
			}
			b.Addi(isa.T2, isa.T1, 1)
			b.Label(fresh("s1_"))
			storeCell(isa.T2, base, isa.S1, int64(pair+3))
		}
		b.Label(skip)
	}
	// Any stores not attached to a guard pair are unconditional.
	for ; stores > 0; stores-- {
		b.Add(isa.T2, isa.T6, isa.S1)
		storeCell(isa.T2, isa.S4, isa.S1, int64(stores)*5)
	}

	// Inner countdown loop: trip count is data-dependent but bounded by the
	// mask, so it terminates on any input.
	if g.P.InnerLoop {
		b.Andi(isa.A7, isa.T6, innerMask)
		b.Label("inner")
		b.Beq(isa.A7, isa.X0, "innerdone")
		b.Add(isa.S3, isa.S3, isa.A7)
		b.Addi(isa.A7, isa.A7, -1)
		b.J("inner")
		b.Label("innerdone")
	}

	filler(g.P.Filler / 2)
	b.Addi(isa.S1, isa.S1, 1)
	b.Label("outerbr")
	b.Blt(isa.S1, isa.S2, "outer")

	b.Li(isa.T5, int64(out))
	b.Sd(isa.S3, isa.T5, 0)
	b.Halt()
	return b.MustBuild()
}
