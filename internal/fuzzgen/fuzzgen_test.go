package fuzzgen

import (
	"testing"

	"phelps/internal/prog"
)

// Every seed must yield a terminating program whose functional re-run
// reproduces the generation-time expectations (the differential harness in
// internal/sim builds on this property).
func TestGeneratedProgramsTerminateAndVerify(t *testing.T) {
	features := map[string]bool{}
	for seed := uint64(0); seed < 200; seed++ {
		g, err := New(seed)
		if err != nil {
			t.Fatalf("seed %#x: %v", seed, err)
		}
		if g.Insts() == 0 {
			t.Fatalf("seed %#x: empty run", seed)
		}
		if err := prog.RunAndVerify(g.Workload()); err != nil {
			t.Fatalf("seed %#x: %v", seed, err)
		}
		p := g.P
		if p.GuardedPairs > 0 {
			features["pairs"] = true
		}
		if p.Stores > 0 {
			features["stores"] = true
		}
		if p.LoopCarried {
			features["loop-carried"] = true
		}
		if p.InnerLoop {
			features["inner"] = true
		}
	}
	for _, f := range []string{"pairs", "stores", "loop-carried", "inner"} {
		if !features[f] {
			t.Errorf("no seed in range exercised feature %q", f)
		}
	}
}

// The low seed bits are a stable feature mask (the committed corpus relies
// on it to pin idioms).
func TestSeedFeatureMask(t *testing.T) {
	p := paramsFor(0b110111)
	if p.GuardedPairs != 3 || p.Stores != 1 || !p.LoopCarried || !p.InnerLoop {
		t.Errorf("mask decode wrong: %+v", p)
	}
	// Same seed, same program: generation must be deterministic.
	a, err := New(42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Prog.Code) != len(b.Prog.Code) || a.wantChecksum != b.wantChecksum {
		t.Error("generation is not deterministic")
	}
	for i := range a.Prog.Code {
		if a.Prog.Code[i] != b.Prog.Code[i] {
			t.Fatalf("inst %d differs between identical seeds", i)
		}
	}
}

// Workload must be re-buildable: each call returns fresh, unconsumed memory.
func TestWorkloadRebuilds(t *testing.T) {
	g, err := New(7)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.RunAndVerify(g.Workload()); err != nil {
		t.Fatal(err)
	}
	if err := prog.RunAndVerify(g.Workload()); err != nil {
		t.Fatalf("second build: %v", err)
	}
}
