// Package isa defines the RISC-V-flavored instruction set used by the
// simulator: a 64-bit integer ISA with 32 logical registers, plus the Phelps
// extensions (predicate source/destination operands) described in Section V-E
// of the paper. Instructions are represented structurally rather than as
// binary encodings; the fixed 4-byte PC granularity of RV64 is preserved so
// loop PC bounds and branch targets behave like the paper's.
package isa

import "fmt"

// Reg is a logical integer register, x0..x31. x0 is hardwired to zero.
type Reg uint8

// NumRegs is the number of logical integer registers.
const NumRegs = 32

// Conventional register aliases (a subset of the RISC-V ABI names).
const (
	X0  Reg = 0 // hardwired zero
	RA  Reg = 1 // return address
	SP  Reg = 2 // stack pointer
	GP  Reg = 3
	TP  Reg = 4
	T0  Reg = 5
	T1  Reg = 6
	T2  Reg = 7
	S0  Reg = 8
	S1  Reg = 9
	A0  Reg = 10
	A1  Reg = 11
	A2  Reg = 12
	A3  Reg = 13
	A4  Reg = 14
	A5  Reg = 15
	A6  Reg = 16
	A7  Reg = 17
	S2  Reg = 18
	S3  Reg = 19
	S4  Reg = 20
	S5  Reg = 21
	S6  Reg = 22
	S7  Reg = 23
	S8  Reg = 24
	S9  Reg = 25
	S10 Reg = 26
	S11 Reg = 27
	T3  Reg = 28
	T4  Reg = 29
	T5  Reg = 30
	T6  Reg = 31
)

// PredReg is a logical predicate register for the Phelps extension. Pred0 is
// reserved to signify unconditional execution (Section V-E).
type PredReg uint8

// Pred0 is the reserved always-enabled predicate.
const Pred0 PredReg = 0

// NumPredRegs is the number of logical predicate registers (31 usable + pred0).
const NumPredRegs = 32

// Op enumerates the instruction opcodes.
type Op uint8

const (
	NOP Op = iota

	// Register-register ALU.
	ADD
	SUB
	SLT
	SLTU
	AND
	OR
	XOR
	SLL
	SRL
	SRA

	// Register-immediate ALU.
	ADDI
	SLTI
	SLTIU
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	LUI // rd = imm << 12

	// Complex ALU.
	MUL
	DIV
	REM

	// Loads (signed unless noted). Addr = rs1 + imm.
	LD  // 8 bytes
	LW  // 4 bytes, sign-extended
	LWU // 4 bytes, zero-extended
	LB  // 1 byte, sign-extended
	LBU // 1 byte, zero-extended

	// Stores. Addr = rs1 + imm, value = rs2.
	SD // 8 bytes
	SW // 4 bytes
	SB // 1 byte

	// Conditional branches: compare rs1, rs2; target = pc + imm.
	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU

	// Jumps.
	JAL  // rd = pc+4; pc = pc + imm
	JALR // rd = pc+4; pc = (rs1 + imm) &^ 1

	// HALT terminates the program (stands in for ECALL/exit).
	HALT

	// PPRODUCE is a predicate producer: a conditional branch converted by
	// Phelps helper-thread construction (Section V-E). It evaluates the
	// original branch condition (per CmpOp) and writes a 2-bit predicate to
	// PredDst; it never redirects control flow.
	PPRODUCE

	// MOVLIVE is the annotated live-in move injected when a helper thread
	// starts (Section V-F): rd in the helper thread's context is copied from
	// rs1 in the source context (main thread or Visit Queue slot).
	MOVLIVE

	numOps
)

var opNames = [numOps]string{
	NOP: "nop", ADD: "add", SUB: "sub", SLT: "slt", SLTU: "sltu",
	AND: "and", OR: "or", XOR: "xor", SLL: "sll", SRL: "srl", SRA: "sra",
	ADDI: "addi", SLTI: "slti", SLTIU: "sltiu", ANDI: "andi", ORI: "ori",
	XORI: "xori", SLLI: "slli", SRLI: "srli", SRAI: "srai", LUI: "lui",
	MUL: "mul", DIV: "div", REM: "rem",
	LD: "ld", LW: "lw", LWU: "lwu", LB: "lb", LBU: "lbu",
	SD: "sd", SW: "sw", SB: "sb",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", BLTU: "bltu", BGEU: "bgeu",
	JAL: "jal", JALR: "jalr", HALT: "halt",
	PPRODUCE: "pproduce", MOVLIVE: "movlive",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Inst is one instruction. Fields not used by an opcode are zero.
type Inst struct {
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int64

	// Phelps extensions (Section V-E). For PPRODUCE, CmpOp holds the
	// original conditional-branch opcode and PredDst the destination
	// predicate. PredSrc/PredDir form the extra predicate source operand
	// carried by converted branches and included stores: the consumer is
	// enabled iff its producer was itself enabled and resolved in direction
	// PredDir.
	CmpOp   Op
	PredDst PredReg
	PredSrc PredReg
	PredDir bool // enabling direction: true = taken
}

// InstBytes is the architectural size of one instruction.
const InstBytes = 4

// IsCondBranch reports whether the opcode is a conditional branch.
func (o Op) IsCondBranch() bool { return o >= BEQ && o <= BGEU }

// IsLoad reports whether the opcode reads data memory.
func (o Op) IsLoad() bool { return o >= LD && o <= LBU }

// IsStore reports whether the opcode writes data memory.
func (o Op) IsStore() bool { return o >= SD && o <= SB }

// IsJump reports whether the opcode is an unconditional control transfer.
func (o Op) IsJump() bool { return o == JAL || o == JALR }

// IsControl reports whether the opcode can redirect fetch.
func (o Op) IsControl() bool { return o.IsCondBranch() || o.IsJump() }

// IsComplex reports whether the opcode uses the complex-ALU lanes.
func (o Op) IsComplex() bool { return o == MUL || o == DIV || o == REM }

// MemBytes returns the access size in bytes for loads and stores, or 0.
func (o Op) MemBytes() int {
	switch o {
	case LD, SD:
		return 8
	case LW, LWU, SW:
		return 4
	case LB, LBU, SB:
		return 1
	}
	return 0
}

// HasImm reports whether the opcode's Imm field is meaningful.
func (o Op) HasImm() bool {
	switch {
	case o >= ADDI && o <= LUI:
		return true
	case o.IsLoad() || o.IsStore():
		return true
	case o.IsCondBranch() || o.IsJump():
		return true
	}
	return false
}

// WritesRd reports whether the opcode writes an integer destination register.
func (o Op) WritesRd() bool {
	switch {
	case o == NOP || o == HALT || o == PPRODUCE:
		return false
	case o.IsStore() || o.IsCondBranch():
		return false
	}
	return true
}

// SrcRegs returns the logical source registers read by the instruction.
// x0 reads are included (they are free in hardware but harmless to report).
func (i *Inst) SrcRegs() (srcs [2]Reg, n int) {
	switch {
	case i.Op == NOP || i.Op == HALT || i.Op == LUI || i.Op == JAL:
		return srcs, 0
	case i.Op == MOVLIVE:
		srcs[0] = i.Rs1
		return srcs, 1
	case i.Op == JALR:
		srcs[0] = i.Rs1
		return srcs, 1
	case i.Op.IsLoad():
		srcs[0] = i.Rs1
		return srcs, 1
	case i.Op.IsStore() || i.Op.IsCondBranch() || i.Op == PPRODUCE:
		srcs[0], srcs[1] = i.Rs1, i.Rs2
		return srcs, 2
	case i.Op >= ADDI && i.Op <= SRAI:
		srcs[0] = i.Rs1
		return srcs, 1
	default: // register-register ALU, MUL/DIV/REM
		srcs[0], srcs[1] = i.Rs1, i.Rs2
		return srcs, 2
	}
}

// BranchTaken evaluates a conditional-branch comparison.
func BranchTaken(op Op, a, b uint64) bool {
	switch op {
	case BEQ:
		return a == b
	case BNE:
		return a != b
	case BLT:
		return int64(a) < int64(b)
	case BGE:
		return int64(a) >= int64(b)
	case BLTU:
		return a < b
	case BGEU:
		return a >= b
	}
	panic(fmt.Sprintf("isa: BranchTaken on non-branch op %v", op))
}

// EvalALU computes the result of an ALU opcode given operand values a (rs1),
// b (rs2) and the immediate. It is shared by the functional emulator and the
// helper-thread execution engine so both produce identical dataflow.
func EvalALU(op Op, a, b uint64, imm int64) uint64 {
	switch op {
	case ADD:
		return a + b
	case SUB:
		return a - b
	case SLT:
		if int64(a) < int64(b) {
			return 1
		}
		return 0
	case SLTU:
		if a < b {
			return 1
		}
		return 0
	case AND:
		return a & b
	case OR:
		return a | b
	case XOR:
		return a ^ b
	case SLL:
		return a << (b & 63)
	case SRL:
		return a >> (b & 63)
	case SRA:
		return uint64(int64(a) >> (b & 63))
	case ADDI:
		return a + uint64(imm)
	case SLTI:
		if int64(a) < imm {
			return 1
		}
		return 0
	case SLTIU:
		if a < uint64(imm) {
			return 1
		}
		return 0
	case ANDI:
		return a & uint64(imm)
	case ORI:
		return a | uint64(imm)
	case XORI:
		return a ^ uint64(imm)
	case SLLI:
		return a << (uint64(imm) & 63)
	case SRLI:
		return a >> (uint64(imm) & 63)
	case SRAI:
		return uint64(int64(a) >> (uint64(imm) & 63))
	case LUI:
		return uint64(imm) << 12
	case MUL:
		return a * b
	case DIV:
		if b == 0 {
			return ^uint64(0)
		}
		if int64(a) == -1<<63 && int64(b) == -1 {
			return a
		}
		return uint64(int64(a) / int64(b))
	case REM:
		if b == 0 {
			return a
		}
		if int64(a) == -1<<63 && int64(b) == -1 {
			return 0
		}
		return uint64(int64(a) % int64(b))
	case MOVLIVE:
		return a
	}
	panic(fmt.Sprintf("isa: EvalALU on non-ALU op %v", op))
}

// String renders the instruction in an assembly-like form.
func (i Inst) String() string {
	switch {
	case i.Op == NOP || i.Op == HALT:
		return i.Op.String()
	case i.Op == LUI:
		return fmt.Sprintf("lui x%d, %d", i.Rd, i.Imm)
	case i.Op == JAL:
		return fmt.Sprintf("jal x%d, %d", i.Rd, i.Imm)
	case i.Op == JALR:
		return fmt.Sprintf("jalr x%d, x%d, %d", i.Rd, i.Rs1, i.Imm)
	case i.Op == MOVLIVE:
		return fmt.Sprintf("movlive x%d, x%d", i.Rd, i.Rs1)
	case i.Op == PPRODUCE:
		s := fmt.Sprintf("pproduce p%d, %s x%d, x%d", i.PredDst, i.CmpOp, i.Rs1, i.Rs2)
		if i.PredSrc != Pred0 {
			s += fmt.Sprintf(" [p%d=%v]", i.PredSrc, i.PredDir)
		}
		return s
	case i.Op.IsLoad():
		return fmt.Sprintf("%s x%d, %d(x%d)", i.Op, i.Rd, i.Imm, i.Rs1)
	case i.Op.IsStore():
		s := fmt.Sprintf("%s x%d, %d(x%d)", i.Op, i.Rs2, i.Imm, i.Rs1)
		if i.PredSrc != Pred0 {
			s += fmt.Sprintf(" [p%d=%v]", i.PredSrc, i.PredDir)
		}
		return s
	case i.Op.IsCondBranch():
		return fmt.Sprintf("%s x%d, x%d, %d", i.Op, i.Rs1, i.Rs2, i.Imm)
	case i.Op.HasImm():
		return fmt.Sprintf("%s x%d, x%d, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	default:
		return fmt.Sprintf("%s x%d, x%d, x%d", i.Op, i.Rd, i.Rs1, i.Rs2)
	}
}

// Program is a contiguous code image based at Base, with PCs advancing by
// InstBytes. Entry is the initial PC.
type Program struct {
	Base   uint64
	Entry  uint64
	Code   []Inst
	Labels map[string]uint64 // label -> PC, for diagnostics and tests
}

// At returns the instruction at pc, or ok=false if pc is outside the image.
func (p *Program) At(pc uint64) (Inst, bool) {
	if pc < p.Base || (pc-p.Base)%InstBytes != 0 {
		return Inst{}, false
	}
	idx := (pc - p.Base) / InstBytes
	if idx >= uint64(len(p.Code)) {
		return Inst{}, false
	}
	return p.Code[idx], true
}

// End returns the first PC past the code image.
func (p *Program) End() uint64 { return p.Base + uint64(len(p.Code))*InstBytes }

// Label returns the PC of a label, panicking if it is unknown. Intended for
// tests and experiment harnesses that need to reference program points.
func (p *Program) Label(name string) uint64 {
	pc, ok := p.Labels[name]
	if !ok {
		panic(fmt.Sprintf("isa: unknown label %q", name))
	}
	return pc
}
