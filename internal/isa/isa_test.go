package isa

import (
	"testing"
	"testing/quick"
)

func TestOpClassPredicates(t *testing.T) {
	cases := []struct {
		op                              Op
		branch, load, store, jump, cplx bool
	}{
		{ADD, false, false, false, false, false},
		{ADDI, false, false, false, false, false},
		{MUL, false, false, false, false, true},
		{DIV, false, false, false, false, true},
		{REM, false, false, false, false, true},
		{LD, false, true, false, false, false},
		{LW, false, true, false, false, false},
		{LWU, false, true, false, false, false},
		{LB, false, true, false, false, false},
		{LBU, false, true, false, false, false},
		{SD, false, false, true, false, false},
		{SW, false, false, true, false, false},
		{SB, false, false, true, false, false},
		{BEQ, true, false, false, false, false},
		{BNE, true, false, false, false, false},
		{BLT, true, false, false, false, false},
		{BGE, true, false, false, false, false},
		{BLTU, true, false, false, false, false},
		{BGEU, true, false, false, false, false},
		{JAL, false, false, false, true, false},
		{JALR, false, false, false, true, false},
		{HALT, false, false, false, false, false},
		{PPRODUCE, false, false, false, false, false},
	}
	for _, c := range cases {
		if got := c.op.IsCondBranch(); got != c.branch {
			t.Errorf("%v.IsCondBranch() = %v, want %v", c.op, got, c.branch)
		}
		if got := c.op.IsLoad(); got != c.load {
			t.Errorf("%v.IsLoad() = %v, want %v", c.op, got, c.load)
		}
		if got := c.op.IsStore(); got != c.store {
			t.Errorf("%v.IsStore() = %v, want %v", c.op, got, c.store)
		}
		if got := c.op.IsJump(); got != c.jump {
			t.Errorf("%v.IsJump() = %v, want %v", c.op, got, c.jump)
		}
		if got := c.op.IsComplex(); got != c.cplx {
			t.Errorf("%v.IsComplex() = %v, want %v", c.op, got, c.cplx)
		}
	}
}

func TestMemBytes(t *testing.T) {
	want := map[Op]int{LD: 8, SD: 8, LW: 4, LWU: 4, SW: 4, LB: 1, LBU: 1, SB: 1, ADD: 0, BEQ: 0}
	for op, n := range want {
		if got := op.MemBytes(); got != n {
			t.Errorf("%v.MemBytes() = %d, want %d", op, got, n)
		}
	}
}

func TestBranchTaken(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint64
		want bool
	}{
		{BEQ, 5, 5, true},
		{BEQ, 5, 6, false},
		{BNE, 5, 6, true},
		{BNE, 5, 5, false},
		{BLT, ^uint64(0), 0, true},  // -1 < 0 signed
		{BLT, 0, ^uint64(0), false}, // 0 < -1 signed is false
		{BGE, 0, ^uint64(0), true},
		{BGE, ^uint64(0), 0, false},
		{BLTU, 0, ^uint64(0), true}, // 0 < max unsigned
		{BLTU, ^uint64(0), 0, false},
		{BGEU, ^uint64(0), 0, true},
		{BGEU, 0, 1, false},
	}
	for _, c := range cases {
		if got := BranchTaken(c.op, c.a, c.b); got != c.want {
			t.Errorf("BranchTaken(%v, %d, %d) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestEvalALUBasics(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint64
		imm  int64
		want uint64
	}{
		{ADD, 3, 4, 0, 7},
		{SUB, 3, 4, 0, ^uint64(0)},
		{SLT, ^uint64(0), 0, 0, 1},
		{SLTU, ^uint64(0), 0, 0, 0},
		{AND, 0b1100, 0b1010, 0, 0b1000},
		{OR, 0b1100, 0b1010, 0, 0b1110},
		{XOR, 0b1100, 0b1010, 0, 0b0110},
		{SLL, 1, 8, 0, 256},
		{SRL, 1 << 63, 63, 0, 1},
		{SRA, 1 << 63, 63, 0, ^uint64(0)},
		{ADDI, 10, 0, -3, 7},
		{SLTI, ^uint64(0), 0, 0, 1},
		{SLTIU, 1, 0, 2, 1},
		{ANDI, 0xFF, 0, 0x0F, 0x0F},
		{ORI, 0xF0, 0, 0x0F, 0xFF},
		{XORI, 0xFF, 0, 0x0F, 0xF0},
		{SLLI, 1, 0, 12, 4096},
		{SRLI, 4096, 0, 12, 1},
		{SRAI, 1 << 63, 0, 63, ^uint64(0)},
		{LUI, 0, 0, 5, 5 << 12},
		{MUL, 7, 6, 0, 42},
		{DIV, 42, 6, 0, 7},
		{DIV, 42, 0, 0, ^uint64(0)}, // RISC-V div-by-zero
		{REM, 43, 6, 0, 1},
		{REM, 43, 0, 0, 43}, // RISC-V rem-by-zero
	}
	for _, c := range cases {
		if got := EvalALU(c.op, c.a, c.b, c.imm); got != c.want {
			t.Errorf("EvalALU(%v, %d, %d, %d) = %d, want %d", c.op, c.a, c.b, c.imm, got, c.want)
		}
	}
}

func TestEvalALUDivOverflow(t *testing.T) {
	minI64 := uint64(1) << 63
	if got := EvalALU(DIV, minI64, ^uint64(0), 0); got != minI64 {
		t.Errorf("DIV overflow: got %#x, want %#x", got, minI64)
	}
	if got := EvalALU(REM, minI64, ^uint64(0), 0); got != 0 {
		t.Errorf("REM overflow: got %#x, want 0", got)
	}
}

// Property: BLT/BGE and BLTU/BGEU are exact complements, and SLT agrees with
// BLT for all values.
func TestBranchComplement_Property(t *testing.T) {
	f := func(a, b uint64) bool {
		if BranchTaken(BLT, a, b) == BranchTaken(BGE, a, b) {
			return false
		}
		if BranchTaken(BLTU, a, b) == BranchTaken(BGEU, a, b) {
			return false
		}
		slt := EvalALU(SLT, a, b, 0) == 1
		return slt == BranchTaken(BLT, a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: shifts only observe the low 6 bits of the shift amount.
func TestShiftMasking_Property(t *testing.T) {
	f := func(a, b uint64) bool {
		return EvalALU(SLL, a, b, 0) == EvalALU(SLL, a, b&63, 0) &&
			EvalALU(SRL, a, b, 0) == EvalALU(SRL, a, b&63, 0) &&
			EvalALU(SRA, a, b, 0) == EvalALU(SRA, a, b&63, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSrcRegs(t *testing.T) {
	cases := []struct {
		inst Inst
		want []Reg
	}{
		{Inst{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}, []Reg{2, 3}},
		{Inst{Op: ADDI, Rd: 1, Rs1: 2}, []Reg{2}},
		{Inst{Op: LD, Rd: 1, Rs1: 2}, []Reg{2}},
		{Inst{Op: SD, Rs1: 2, Rs2: 3}, []Reg{2, 3}},
		{Inst{Op: BEQ, Rs1: 4, Rs2: 5}, []Reg{4, 5}},
		{Inst{Op: PPRODUCE, Rs1: 4, Rs2: 5, CmpOp: BEQ}, []Reg{4, 5}},
		{Inst{Op: JAL, Rd: 1}, nil},
		{Inst{Op: JALR, Rd: 1, Rs1: 2}, []Reg{2}},
		{Inst{Op: LUI, Rd: 1}, nil},
		{Inst{Op: NOP}, nil},
		{Inst{Op: HALT}, nil},
		{Inst{Op: MOVLIVE, Rd: 1, Rs1: 9}, []Reg{9}},
	}
	for _, c := range cases {
		srcs, n := c.inst.SrcRegs()
		if n != len(c.want) {
			t.Errorf("%v: got %d srcs, want %d", c.inst, n, len(c.want))
			continue
		}
		for i := 0; i < n; i++ {
			if srcs[i] != c.want[i] {
				t.Errorf("%v: src[%d] = %d, want %d", c.inst, i, srcs[i], c.want[i])
			}
		}
	}
}

func TestWritesRd(t *testing.T) {
	writes := []Op{ADD, ADDI, LUI, MUL, LD, LW, JAL, JALR, MOVLIVE}
	noWrites := []Op{NOP, HALT, SD, SW, SB, BEQ, BGEU, PPRODUCE}
	for _, op := range writes {
		if !op.WritesRd() {
			t.Errorf("%v.WritesRd() = false, want true", op)
		}
	}
	for _, op := range noWrites {
		if op.WritesRd() {
			t.Errorf("%v.WritesRd() = true, want false", op)
		}
	}
}

func TestProgramAt(t *testing.T) {
	p := &Program{
		Base: 0x1000,
		Code: []Inst{{Op: ADD}, {Op: SUB}, {Op: HALT}},
	}
	if in, ok := p.At(0x1000); !ok || in.Op != ADD {
		t.Errorf("At(0x1000) = %v, %v", in, ok)
	}
	if in, ok := p.At(0x1004); !ok || in.Op != SUB {
		t.Errorf("At(0x1004) = %v, %v", in, ok)
	}
	if _, ok := p.At(0x1002); ok {
		t.Error("At(misaligned) should fail")
	}
	if _, ok := p.At(0x0FFC); ok {
		t.Error("At(below base) should fail")
	}
	if _, ok := p.At(0x100C); ok {
		t.Error("At(past end) should fail")
	}
	if p.End() != 0x100C {
		t.Errorf("End() = %#x, want 0x100c", p.End())
	}
}

func TestInstString(t *testing.T) {
	// Smoke-test the disassembly paths; exact text matters less than no panic
	// and non-empty output.
	insts := []Inst{
		{Op: NOP}, {Op: HALT},
		{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: ADDI, Rd: 1, Rs1: 2, Imm: -5},
		{Op: LUI, Rd: 1, Imm: 16},
		{Op: LD, Rd: 1, Rs1: 2, Imm: 8},
		{Op: SD, Rs1: 2, Rs2: 3, Imm: 8},
		{Op: SD, Rs1: 2, Rs2: 3, Imm: 8, PredSrc: 2, PredDir: true},
		{Op: BNE, Rs1: 1, Rs2: 0, Imm: -16},
		{Op: JAL, Rd: 0, Imm: 32},
		{Op: JALR, Rd: 0, Rs1: 1},
		{Op: PPRODUCE, Rs1: 1, Rs2: 2, CmpOp: BGE, PredDst: 1},
		{Op: PPRODUCE, Rs1: 1, Rs2: 2, CmpOp: BEQ, PredDst: 2, PredSrc: 1, PredDir: false},
		{Op: MOVLIVE, Rd: 5, Rs1: 6},
	}
	for _, in := range insts {
		if s := in.String(); s == "" {
			t.Errorf("empty String() for %+v", in)
		}
	}
	if Op(250).String() == "" {
		t.Error("unknown op String() should be non-empty")
	}
}
