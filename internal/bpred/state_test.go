package bpred

import (
	"bytes"
	"testing"

	"phelps/internal/codec"
)

// lcg is a tiny deterministic branch-stream generator: a pc out of a small
// working set (so tables see real contention) and a history-correlated
// outcome.
type lcg struct{ s uint64 }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s
}

func (l *lcg) branch() (pc uint64, taken bool) {
	v := l.next()
	return 0x1000 + (v>>8&0x3f)*4, v>>32&7 < 5
}

func builders() map[string]func() Predictor {
	return map[string]func() Predictor{
		"bimodal": func() Predictor { return NewBimodal(14) },
		"gshare":  func() Predictor { return NewGshare(15, 13) },
		"tage":    func() Predictor { return NewTAGE(DefaultTAGEConfig()) },
		"perfect": func() Predictor { return Perfect{} },
	}
}

// TestStateRoundTrip trains each predictor, round-trips its state through
// bytes into a fresh instance, and requires the original and the loaded copy
// to agree prediction-for-prediction on a further stream — the property the
// checkpoint cache's bit-identicality rests on.
func TestStateRoundTrip(t *testing.T) {
	for name, build := range builders() {
		t.Run(name, func(t *testing.T) {
			orig := build()
			g := lcg{s: 12345}
			for i := 0; i < 20000; i++ {
				pc, taken := g.branch()
				orig.PredictAndTrain(pc, taken)
			}
			blob := orig.(StateCodec).AppendState(nil)

			loaded := build()
			r := codec.NewReader(blob)
			if err := loaded.(StateCodec).LoadState(r); err != nil {
				t.Fatalf("LoadState: %v", err)
			}
			if err := r.Expect(0); err != nil {
				t.Fatalf("trailing bytes after LoadState: %d", r.Len())
			}
			// Re-serializing the loaded copy must reproduce the blob exactly.
			if !bytes.Equal(blob, loaded.(StateCodec).AppendState(nil)) {
				t.Fatalf("re-serialized state differs from original blob")
			}
			for i := 0; i < 20000; i++ {
				pc, taken := g.branch()
				if a, b := orig.PredictAndTrain(pc, taken), loaded.PredictAndTrain(pc, taken); a != b {
					t.Fatalf("prediction %d diverged after round-trip: orig=%v loaded=%v", i, a, b)
				}
			}
			if !bytes.Equal(orig.(StateCodec).AppendState(nil), loaded.(StateCodec).AppendState(nil)) {
				t.Fatalf("state diverged after post-load stream")
			}
		})
	}
}

// TestStateErrors: truncation and kind mismatches decode to errors, not
// panics or silent corruption.
func TestStateErrors(t *testing.T) {
	for name, build := range builders() {
		if name == "perfect" {
			continue // one tag byte; truncation below covers it via others
		}
		t.Run(name+"/truncated", func(t *testing.T) {
			p := build()
			g := lcg{s: 7}
			for i := 0; i < 1000; i++ {
				pc, taken := g.branch()
				p.PredictAndTrain(pc, taken)
			}
			blob := p.(StateCodec).AppendState(nil)
			for _, cut := range []int{0, 1, len(blob) / 2, len(blob) - 1} {
				fresh := build()
				if err := fresh.(StateCodec).LoadState(codec.NewReader(blob[:cut])); err == nil {
					t.Fatalf("LoadState accepted truncation to %d bytes", cut)
				}
			}
		})
	}
	t.Run("kind-mismatch", func(t *testing.T) {
		blob := NewBimodal(14).AppendState(nil)
		if err := NewGshare(15, 13).LoadState(codec.NewReader(blob)); err == nil {
			t.Fatalf("gshare accepted bimodal state")
		}
	})
	t.Run("size-mismatch", func(t *testing.T) {
		blob := NewBimodal(10).AppendState(nil)
		if err := NewBimodal(14).LoadState(codec.NewReader(blob)); err == nil {
			t.Fatalf("bimodal(14) accepted bimodal(10) state")
		}
	})
}
