// Package bpred implements the branch direction predictors used by the
// simulator: bimodal, gshare, a TAGE-SC-L-class predictor (the paper's
// baseline core uses 64KB TAGE-SC-L), and a perfect oracle (for the perfBP
// configuration of Fig. 12a).
//
// Predictors are passive under the event-driven clock (internal/clock):
// they hold no per-cycle state machine and post no events of their own.
// Lookups happen at fetch and training at retire — both executed cycles,
// which the posting cores mark busy — so a skipped span can never contain
// a prediction or a table update, and the conservatism contract holds with
// no predictor involvement.
package bpred

import "phelps/internal/obs"

// Stats counts predictor activity for observability. Predictors embed it,
// which also promotes RegisterObs (so sim can register any stats-carrying
// predictor under bpred.<name>.*).
type Stats struct {
	Lookups   uint64
	PredTaken uint64
}

// RegisterObs registers the predictor's counters under scope.
func (s *Stats) RegisterObs(r *obs.Registry, scope string) {
	sc := r.Scope(scope)
	sc.Counter("lookups", func() uint64 { return s.Lookups })
	sc.Counter("pred_taken", func() uint64 { return s.PredTaken })
}

func (s *Stats) record(taken bool) {
	s.Lookups++
	if taken {
		s.PredTaken++
	}
}

// Predictor predicts a conditional branch at fetch and trains immediately
// with the actual outcome (the simulator resolves correct-path outcomes
// up front; see DESIGN.md). Implementations keep their own global history.
type Predictor interface {
	// PredictAndTrain returns the prediction for the branch at pc, then
	// updates all internal state (tables and histories) with the actual
	// outcome.
	PredictAndTrain(pc uint64, taken bool) bool

	// Name identifies the predictor in reports.
	Name() string
}

// Cloner is implemented by predictors whose trained state can be
// snapshotted. Sampled simulation (sim.SampledRun) warms one predictor
// functionally over the whole run prefix and clones it at each SimPoint
// checkpoint.
type Cloner interface {
	// ClonePredictor returns an independent deep copy of the predictor.
	ClonePredictor() Predictor
}

// ctr2 is a 2-bit saturating counter; taken if >= 2.
type ctr2 uint8

func (c ctr2) taken() bool { return c >= 2 }

func (c ctr2) update(taken bool) ctr2 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// --- Bimodal ---

// Bimodal is a PC-indexed table of 2-bit counters. Branch Runahead uses a
// bimodal predictor for speculative chain triggering (Section VI).
type Bimodal struct {
	Stats
	table []ctr2
	mask  uint64
}

// NewBimodal returns a bimodal predictor with 2^logSize counters,
// initialized weakly taken... weakly not-taken (1), matching common practice.
func NewBimodal(logSize uint) *Bimodal {
	n := 1 << logSize
	t := make([]ctr2, n)
	for i := range t {
		t[i] = 1
	}
	return &Bimodal{table: t, mask: uint64(n - 1)}
}

func (b *Bimodal) index(pc uint64) uint64 { return (pc >> 2) & b.mask }

// Predict returns the current prediction without training (used by the
// Branch Runahead chain trigger, which trains separately).
func (b *Bimodal) Predict(pc uint64) bool { return b.table[b.index(pc)].taken() }

// Train updates the counter for pc.
func (b *Bimodal) Train(pc uint64, taken bool) {
	i := b.index(pc)
	b.table[i] = b.table[i].update(taken)
}

// PredictAndTrain implements Predictor.
func (b *Bimodal) PredictAndTrain(pc uint64, taken bool) bool {
	p := b.Predict(pc)
	b.record(p)
	b.Train(pc, taken)
	return p
}

// Name implements Predictor.
func (b *Bimodal) Name() string { return "bimodal" }

// ClonePredictor implements Cloner.
func (b *Bimodal) ClonePredictor() Predictor {
	cp := *b
	cp.table = append([]ctr2(nil), b.table...)
	return &cp
}

// Reset restores the freshly-constructed state (all counters weakly
// not-taken, stats zeroed), letting a pooled predictor be reused without
// reallocating its table.
func (b *Bimodal) Reset() {
	for i := range b.table {
		b.table[i] = 1
	}
	b.Stats = Stats{}
}

// --- Gshare ---

// Gshare XORs global history into the table index.
type Gshare struct {
	Stats
	table []ctr2
	mask  uint64
	hist  uint64
	hbits uint
}

// NewGshare returns a gshare predictor with 2^logSize counters and hbits of
// global history.
func NewGshare(logSize, hbits uint) *Gshare {
	n := 1 << logSize
	t := make([]ctr2, n)
	for i := range t {
		t[i] = 1
	}
	return &Gshare{table: t, mask: uint64(n - 1), hbits: hbits}
}

// PredictAndTrain implements Predictor.
func (g *Gshare) PredictAndTrain(pc uint64, taken bool) bool {
	i := ((pc >> 2) ^ (g.hist & ((1 << g.hbits) - 1))) & g.mask
	p := g.table[i].taken()
	g.record(p)
	g.table[i] = g.table[i].update(taken)
	g.hist = g.hist<<1 | b2u(taken)
	return p
}

// Name implements Predictor.
func (g *Gshare) Name() string { return "gshare" }

// ClonePredictor implements Cloner.
func (g *Gshare) ClonePredictor() Predictor {
	cp := *g
	cp.table = append([]ctr2(nil), g.table...)
	return &cp
}

// --- Perfect ---

// Perfect is the oracle predictor used for the perfBP configuration.
type Perfect struct{}

// PredictAndTrain implements Predictor: always correct.
func (Perfect) PredictAndTrain(_ uint64, taken bool) bool { return taken }

// Name implements Predictor.
func (Perfect) Name() string { return "perfect" }

// ClonePredictor implements Cloner (the oracle is stateless).
func (Perfect) ClonePredictor() Predictor { return Perfect{} }

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
