package bpred

import (
	"testing"

	"phelps/internal/graph"
)

// accuracy runs a predictor over a synthetic branch stream and returns the
// fraction of correct predictions.
func accuracy(p Predictor, stream func(i int) (pc uint64, taken bool), n int) float64 {
	correct := 0
	for i := 0; i < n; i++ {
		pc, taken := stream(i)
		if p.PredictAndTrain(pc, taken) == taken {
			correct++
		}
	}
	return float64(correct) / float64(n)
}

func TestPerfectIsPerfect(t *testing.T) {
	r := graph.NewRand(1)
	acc := accuracy(Perfect{}, func(i int) (uint64, bool) {
		return 0x1000 + uint64(i%7)*4, r.Next()&1 == 0
	}, 10000)
	if acc != 1.0 {
		t.Errorf("perfect accuracy = %f", acc)
	}
}

func TestBimodalLearnsBiasedBranch(t *testing.T) {
	b := NewBimodal(12)
	acc := accuracy(b, func(i int) (uint64, bool) {
		return 0x1000, true // always taken
	}, 1000)
	if acc < 0.99 {
		t.Errorf("bimodal on always-taken: %f", acc)
	}
}

func TestBimodalSeparatesPCs(t *testing.T) {
	b := NewBimodal(12)
	acc := accuracy(b, func(i int) (uint64, bool) {
		if i%2 == 0 {
			return 0x1000, true
		}
		return 0x2000, false
	}, 2000)
	if acc < 0.99 {
		t.Errorf("bimodal with two biased PCs: %f", acc)
	}
}

func TestBimodalPredictTrainSeparation(t *testing.T) {
	b := NewBimodal(8)
	for i := 0; i < 10; i++ {
		b.Train(0x40, true)
	}
	if !b.Predict(0x40) {
		t.Error("Predict should be taken after taken training")
	}
	for i := 0; i < 10; i++ {
		b.Train(0x40, false)
	}
	if b.Predict(0x40) {
		t.Error("Predict should be not-taken after not-taken training")
	}
}

func TestGshareLearnsPattern(t *testing.T) {
	// Alternating pattern is history-predictable but defeats bimodal.
	g := NewGshare(14, 12)
	accG := accuracy(g, func(i int) (uint64, bool) { return 0x1000, i%2 == 0 }, 4000)
	if accG < 0.95 {
		t.Errorf("gshare on alternating: %f", accG)
	}
	b := NewBimodal(14)
	accB := accuracy(b, func(i int) (uint64, bool) { return 0x1000, i%2 == 0 }, 4000)
	if accB > 0.7 {
		t.Errorf("bimodal should fail on alternating, got %f", accB)
	}
}

func TestTAGELearnsLongPattern(t *testing.T) {
	// Period-13 pattern requires real history correlation.
	pattern := []bool{true, true, false, true, false, false, true, true, true, false, false, true, false}
	tg := NewTAGE(DefaultTAGEConfig())
	acc := accuracy(tg, func(i int) (uint64, bool) { return 0x1000, pattern[i%len(pattern)] }, 20000)
	if acc < 0.95 {
		t.Errorf("TAGE on period-13 pattern: %f", acc)
	}
}

func TestTAGEOnRandomIsPoor(t *testing.T) {
	// A truly data-dependent (random) branch is unpredictable: the defining
	// property of delinquent branches. TAGE must not magically exceed ~65%.
	r := graph.NewRand(99)
	tg := NewTAGE(DefaultTAGEConfig())
	acc := accuracy(tg, func(i int) (uint64, bool) { return 0x1000, r.Next()%100 < 50 }, 20000)
	if acc > 0.62 {
		t.Errorf("TAGE on random branch: %f (should be near 0.5)", acc)
	}
}

func TestTAGEBiasedRandomTracksBias(t *testing.T) {
	// 80/20 biased random: accuracy should approach ~0.8, not much more.
	r := graph.NewRand(7)
	tg := NewTAGE(DefaultTAGEConfig())
	acc := accuracy(tg, func(i int) (uint64, bool) { return 0x2000, r.Next()%100 < 80 }, 20000)
	if acc < 0.72 || acc > 0.9 {
		t.Errorf("TAGE on 80/20 branch: %f", acc)
	}
}

func TestTAGEMultipleBranches(t *testing.T) {
	// Interleave a loop branch (taken 15, not-taken 1), a biased branch, and
	// an alternating branch; all should be learned well.
	tg := NewTAGE(DefaultTAGEConfig())
	n := 30000
	correct := 0
	it := 0
	for i := 0; i < n; i++ {
		var pc uint64
		var taken bool
		switch i % 3 {
		case 0:
			pc, taken = 0x100, it%16 != 15 // loop with trip count 16
			it++
		case 1:
			pc, taken = 0x200, true
		default:
			pc, taken = 0x300, (i/3)%2 == 0
		}
		if tg.PredictAndTrain(pc, taken) == taken {
			correct++
		}
	}
	acc := float64(correct) / float64(n)
	if acc < 0.93 {
		t.Errorf("TAGE on mixed stream: %f", acc)
	}
}

func TestLoopPredictorLearnsTripCount(t *testing.T) {
	lp := newLoopPredictor(6)
	pc := uint64(0x500)
	// Train several complete loops with trip count 7 (6 taken, 1 not-taken).
	for loop := 0; loop < 8; loop++ {
		for i := 0; i < 6; i++ {
			lp.update(pc, true)
		}
		lp.update(pc, false)
	}
	// Now predictions across one loop should be 6 takens then a not-taken.
	for i := 0; i < 6; i++ {
		dir, conf := lp.predict(pc)
		if !conf {
			t.Fatalf("iteration %d: not confident", i)
		}
		if !dir {
			t.Errorf("iteration %d: predicted not-taken, want taken", i)
		}
		lp.update(pc, true)
	}
	dir, conf := lp.predict(pc)
	if !conf || dir {
		t.Errorf("exit: dir=%v conf=%v, want not-taken confident", dir, conf)
	}
}

func TestTAGEWithLoopPredictorOnFixedLoop(t *testing.T) {
	cfg := DefaultTAGEConfig()
	tg := NewTAGE(cfg)
	// Fixed trip-count-37 loop; beyond gshare-style history reach but the
	// loop predictor captures it.
	n := 37 * 400
	correct := 0
	for i := 0; i < n; i++ {
		taken := i%37 != 36
		if tg.PredictAndTrain(0x700, taken) == taken {
			correct++
		}
	}
	acc := float64(correct) / float64(n)
	if acc < 0.97 {
		t.Errorf("TAGE+loop on trip-37 loop: %f", acc)
	}
}

func TestNames(t *testing.T) {
	if NewBimodal(4).Name() != "bimodal" {
		t.Error("bimodal name")
	}
	if NewGshare(4, 4).Name() != "gshare" {
		t.Error("gshare name")
	}
	if NewTAGE(DefaultTAGEConfig()).Name() != "tage-sc-l" {
		t.Error("tage name")
	}
	if (Perfect{}).Name() != "perfect" {
		t.Error("perfect name")
	}
}

func TestFoldedHistory(t *testing.T) {
	f := newFolded(16, 8)
	// Push 16 ones; comp must be nonzero and within 8 bits.
	hist := make([]uint64, 0, 64)
	for i := 0; i < 32; i++ {
		old := uint64(0)
		if len(hist) >= 16 {
			old = hist[len(hist)-16]
		}
		f.update(1, old)
		hist = append(hist, 1)
		if f.comp >= 1<<8 {
			t.Fatalf("folded history overflow: %#x", f.comp)
		}
	}
}

func BenchmarkTAGEPredictAndTrain(b *testing.B) {
	tg := NewTAGE(DefaultTAGEConfig())
	r := graph.NewRand(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := 0x1000 + uint64(i%64)*4
		tg.PredictAndTrain(pc, r.Next()&3 != 0)
	}
}
