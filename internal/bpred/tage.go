package bpred

import "math"

// TAGE-SC-L-class predictor: a bimodal base table, several tagged tables
// indexed with geometrically increasing global-history lengths, a loop
// predictor, and a small statistical corrector. This is a scaled-down
// implementation of the paper's 64KB TAGE-SC-L baseline [39]: the structures
// and update policies follow Seznec's design; table sizes are parameters.

const (
	tageTables  = 6
	tageCtrMax  = 3 // 3-bit signed counter range [-4,3]
	tageCtrMin  = -4
	tageUMax    = 3
	histMaxBits = 640
)

type tageEntry struct {
	tag uint16
	ctr int8 // [-4, 3]; taken if >= 0
	u   uint8
}

type tageTable struct {
	entries []tageEntry
	mask    uint64
	histLen int
	tagBits uint
	// folded history registers for index and tag computation
	foldIdx  foldedHist
	foldTag0 foldedHist
	foldTag1 foldedHist
}

// foldedHist maintains a circularly-folded global history of origLen bits
// compressed to compLen bits, updated incrementally per branch.
type foldedHist struct {
	comp    uint64
	compLen uint
	origLen int
	outPos  uint
}

func newFolded(origLen int, compLen uint) foldedHist {
	return foldedHist{compLen: compLen, origLen: origLen, outPos: uint(origLen) % compLen}
}

func (f *foldedHist) update(newBit, oldBit uint64) {
	f.comp = (f.comp << 1) | newBit
	f.comp ^= oldBit << f.outPos
	f.comp ^= f.comp >> f.compLen
	f.comp &= (1 << f.compLen) - 1
}

// TAGE is the TAGE-SC-L-class predictor.
type TAGE struct {
	Stats
	base   []ctr2
	bMask  uint64
	tables [tageTables]tageTable

	ghist  [histMaxBits]uint8 // circular buffer of outcomes
	ghead  int
	useAlt int8 // use-alt-on-newly-allocated counter

	loop *loopPredictor
	sc   *statCorrector

	allocSeed uint64
}

// TAGEConfig sizes the predictor.
type TAGEConfig struct {
	LogBase   uint // log2 entries of bimodal base
	LogTagged uint // log2 entries of each tagged table
	MinHist   int
	MaxHist   int
	WithLoop  bool
	WithSC    bool
}

// DefaultTAGEConfig approximates the storage balance of 64KB TAGE-SC-L at
// simulator-friendly scale.
func DefaultTAGEConfig() TAGEConfig {
	return TAGEConfig{LogBase: 14, LogTagged: 11, MinHist: 4, MaxHist: 512, WithLoop: true, WithSC: true}
}

// NewTAGE builds a TAGE-SC-L-class predictor.
func NewTAGE(cfg TAGEConfig) *TAGE {
	t := &TAGE{}
	n := 1 << cfg.LogBase
	t.base = make([]ctr2, n)
	for i := range t.base {
		t.base[i] = 1
	}
	t.bMask = uint64(n - 1)

	// Geometric history lengths.
	ratio := 1.0
	if tageTables > 1 {
		ratio = math.Pow(float64(cfg.MaxHist)/float64(cfg.MinHist), 1.0/float64(tageTables-1))
	}
	h := float64(cfg.MinHist)
	for i := 0; i < tageTables; i++ {
		hl := int(h + 0.5)
		if hl >= histMaxBits {
			hl = histMaxBits - 1
		}
		tt := &t.tables[i]
		m := 1 << cfg.LogTagged
		tt.entries = make([]tageEntry, m)
		tt.mask = uint64(m - 1)
		tt.histLen = hl
		tt.tagBits = uint(9 + i)
		if tt.tagBits > 14 {
			tt.tagBits = 14
		}
		tt.foldIdx = newFolded(hl, cfg.LogTagged)
		tt.foldTag0 = newFolded(hl, tt.tagBits)
		tt.foldTag1 = newFolded(hl, tt.tagBits-1)
		h *= ratio
	}
	if cfg.WithLoop {
		t.loop = newLoopPredictor(6)
	}
	if cfg.WithSC {
		t.sc = newStatCorrector(12)
	}
	t.allocSeed = 0x123456789
	return t
}

func (t *TAGE) index(ti int) uint64 {
	tt := &t.tables[ti]
	return tt.foldIdx.comp & tt.mask
}

func (t *TAGE) tag(pc uint64, ti int) uint16 {
	tt := &t.tables[ti]
	return uint16((pc>>2 ^ tt.foldTag0.comp ^ (tt.foldTag1.comp << 1)) & ((1 << tt.tagBits) - 1))
}

func (t *TAGE) idxWithPC(pc uint64, ti int) uint64 {
	tt := &t.tables[ti]
	return (t.index(ti) ^ (pc >> 2) ^ (pc >> (2 + uint(ti)))) & tt.mask
}

// PredictAndTrain implements Predictor.
func (t *TAGE) PredictAndTrain(pc uint64, taken bool) bool {
	// --- prediction ---
	provider, altProvider := -1, -1
	var provIdx, altIdx uint64
	for i := tageTables - 1; i >= 0; i-- {
		idx := t.idxWithPC(pc, i)
		if t.tables[i].entries[idx].tag == t.tag(pc, i) {
			if provider < 0 {
				provider, provIdx = i, idx
			} else {
				altProvider, altIdx = i, idx
				break
			}
		}
	}
	basePred := t.base[(pc>>2)&t.bMask].taken()
	altPred := basePred
	if altProvider >= 0 {
		altPred = t.tables[altProvider].entries[altIdx].ctr >= 0
	}
	tagePred := altPred
	usedProvider := false
	weakProvider := false
	if provider >= 0 {
		e := &t.tables[provider].entries[provIdx]
		weakProvider = e.ctr == 0 || e.ctr == -1
		if weakProvider && e.u == 0 && t.useAlt >= 0 {
			tagePred = altPred // newly allocated: prefer alt
		} else {
			tagePred = e.ctr >= 0
			usedProvider = true
		}
	}

	pred := tagePred
	// Loop predictor override when confident.
	if t.loop != nil {
		if lp, conf := t.loop.predict(pc); conf {
			pred = lp
		}
	}
	// Statistical corrector may flip low-confidence TAGE predictions.
	if t.sc != nil {
		pred = t.sc.correct(pc, t.ghistBit(0), pred, provider >= 0 && !weakProvider)
	}

	t.record(pred)

	// --- update ---
	t.train(pc, taken, provider, provIdx, altProvider, altIdx, altPred, tagePred, usedProvider)
	if t.loop != nil {
		t.loop.update(pc, taken)
	}
	if t.sc != nil {
		t.sc.train(pc, t.ghistBit(0), taken)
	}
	t.pushHistory(taken)
	return pred
}

func (t *TAGE) train(pc uint64, taken bool, provider int, provIdx uint64, altProvider int, altIdx uint64, altPred, tagePred, usedProvider bool) {
	correct := tagePred == taken

	// Allocate on misprediction if a longer history table is available.
	if !correct && provider < tageTables-1 {
		start := provider + 1
		allocated := false
		// Pseudo-random start among candidates to avoid ping-pong.
		t.allocSeed = t.allocSeed*6364136223846793005 + 1442695040888963407
		for i := start; i < tageTables; i++ {
			idx := t.idxWithPC(pc, i)
			e := &t.tables[i].entries[idx]
			if e.u == 0 {
				e.tag = t.tag(pc, i)
				e.ctr = ctrInit(taken)
				allocated = true
				break
			}
		}
		if !allocated {
			// Decay usefulness of all candidates.
			for i := start; i < tageTables; i++ {
				idx := t.idxWithPC(pc, i)
				e := &t.tables[i].entries[idx]
				if e.u > 0 {
					e.u--
				}
			}
		}
	}

	// Update provider counter (or base if no provider).
	if provider >= 0 {
		e := &t.tables[provider].entries[provIdx]
		e.ctr = ctrUpdate(e.ctr, taken)
		// Usefulness: provider correct and alt wrong -> increment; the
		// reverse -> decrement.
		provPred := e.ctr >= 0
		_ = provPred
		if usedProvider {
			if (tagePred == taken) && (altPred != taken) && e.u < tageUMax {
				e.u++
			} else if (tagePred != taken) && (altPred == taken) && e.u > 0 {
				e.u--
			}
		}
		// use-alt counter training on weak entries.
		if e.u == 0 && (e.ctr == 0 || e.ctr == -1) {
			if altPred == taken && tagePred != taken && t.useAlt < 7 {
				t.useAlt++
			} else if altPred != taken && tagePred == taken && t.useAlt > -8 {
				t.useAlt--
			}
		}
		// Also train alt/base below provider when entry was newly allocated.
		if e.u == 0 {
			if altProvider >= 0 {
				ae := &t.tables[altProvider].entries[altIdx]
				ae.ctr = ctrUpdate(ae.ctr, taken)
			} else {
				bi := (pc >> 2) & t.bMask
				t.base[bi] = t.base[bi].update(taken)
			}
		}
	} else {
		bi := (pc >> 2) & t.bMask
		t.base[bi] = t.base[bi].update(taken)
	}
}

func ctrInit(taken bool) int8 {
	if taken {
		return 0
	}
	return -1
}

func ctrUpdate(c int8, taken bool) int8 {
	if taken {
		if c < tageCtrMax {
			return c + 1
		}
		return c
	}
	if c > tageCtrMin {
		return c - 1
	}
	return c
}

func (t *TAGE) ghistBit(age int) uint64 {
	i := t.ghead - 1 - age
	for i < 0 {
		i += histMaxBits
	}
	return uint64(t.ghist[i%histMaxBits])
}

func (t *TAGE) pushHistory(taken bool) {
	bit := uint64(0)
	if taken {
		bit = 1
	}
	t.ghist[t.ghead] = uint8(bit)
	for i := range t.tables {
		tt := &t.tables[i]
		oldPos := t.ghead - tt.histLen
		for oldPos < 0 {
			oldPos += histMaxBits
		}
		oldBit := uint64(t.ghist[oldPos%histMaxBits])
		tt.foldIdx.update(bit, oldBit)
		tt.foldTag0.update(bit, oldBit)
		tt.foldTag1.update(bit, oldBit)
	}
	t.ghead = (t.ghead + 1) % histMaxBits
}

// Name implements Predictor.
func (t *TAGE) Name() string { return "tage-sc-l" }

// ClonePredictor implements Cloner: a deep copy of every table and the
// history state (ghist and the folded registers are arrays/values, so the
// struct copy already covers them).
func (t *TAGE) ClonePredictor() Predictor {
	cp := *t
	cp.base = append([]ctr2(nil), t.base...)
	for i := range cp.tables {
		cp.tables[i].entries = append([]tageEntry(nil), t.tables[i].entries...)
	}
	if t.loop != nil {
		l := *t.loop
		l.entries = append([]loopEntry(nil), t.loop.entries...)
		cp.loop = &l
	}
	if t.sc != nil {
		s := *t.sc
		s.bias = append([]int8(nil), t.sc.bias...)
		s.hist = append([]int8(nil), t.sc.hist...)
		cp.sc = &s
	}
	return &cp
}

// --- loop predictor ---

type loopEntry struct {
	tag       uint16
	tripCount uint16
	current   uint16
	conf      uint8
	valid     bool
}

type loopPredictor struct {
	entries []loopEntry
	mask    uint64
}

func newLoopPredictor(logSize uint) *loopPredictor {
	return &loopPredictor{entries: make([]loopEntry, 1<<logSize), mask: uint64(1<<logSize - 1)}
}

func (l *loopPredictor) at(pc uint64) *loopEntry { return &l.entries[(pc>>2)&l.mask] }

func (l *loopPredictor) tagOf(pc uint64) uint16 { return uint16(pc >> 8) }

// predict returns (direction, confident).
func (l *loopPredictor) predict(pc uint64) (bool, bool) {
	e := l.at(pc)
	if !e.valid || e.tag != l.tagOf(pc) || e.conf < 3 {
		return false, false
	}
	// Predict taken while below the learned trip count, not-taken at it.
	return e.current+1 < e.tripCount, true
}

func (l *loopPredictor) update(pc uint64, taken bool) {
	e := l.at(pc)
	if !e.valid || e.tag != l.tagOf(pc) {
		*e = loopEntry{tag: l.tagOf(pc), valid: true}
	}
	if taken {
		if e.current < ^uint16(0) {
			e.current++
		}
		return
	}
	// Loop exit: compare trip count with learned value.
	trip := e.current + 1
	if trip == e.tripCount {
		if e.conf < 7 {
			e.conf++
		}
	} else {
		e.tripCount = trip
		e.conf = 0
	}
	e.current = 0
}

// --- statistical corrector ---

// statCorrector is a small perceptron-style corrector over {bias, last
// outcome} features; it flips TAGE's prediction when the correlation is
// strong and TAGE confidence is low.
type statCorrector struct {
	bias []int8
	hist []int8
	mask uint64
}

func newStatCorrector(logSize uint) *statCorrector {
	n := 1 << logSize
	return &statCorrector{bias: make([]int8, n), hist: make([]int8, n), mask: uint64(n - 1)}
}

func (s *statCorrector) idx(pc, h uint64) (uint64, uint64) {
	return (pc >> 2) & s.mask, ((pc >> 2) ^ h<<3 ^ (pc >> 9)) & s.mask
}

func (s *statCorrector) correct(pc uint64, lastBit uint64, tagePred, tageConfident bool) bool {
	if tageConfident {
		return tagePred
	}
	i1, i2 := s.idx(pc, lastBit)
	sum := int(s.bias[i1]) + int(s.hist[i2])
	if sum > 8 {
		return true
	}
	if sum < -8 {
		return false
	}
	return tagePred
}

func (s *statCorrector) train(pc uint64, lastBit uint64, taken bool) {
	i1, i2 := s.idx(pc, lastBit)
	s.bias[i1] = sat8(s.bias[i1], taken)
	s.hist[i2] = sat8(s.hist[i2], taken)
}

func sat8(c int8, up bool) int8 {
	if up {
		if c < 63 {
			return c + 1
		}
		return c
	}
	if c > -64 {
		return c - 1
	}
	return c
}
