// Binary serialization of trained predictor state, for the persistent
// checkpoint cache (sim.CkptCache): sampled simulation warms a predictor
// functionally over the run prefix and snapshots the warmed state per
// SimPoint; serializing it means the warm-up pass runs once per workload ever.
//
// Only dynamic state is serialized — table contents, folded-history
// registers, counters — never configuration (sizes, masks, history lengths).
// LoadState is called on a freshly constructed predictor of the same
// configuration and validates that every table length matches, so a state
// blob from a differently-sized predictor decodes to an error, not silent
// corruption. The byte format is exact: a loaded predictor produces the same
// prediction sequence, bit for bit, as the one it was saved from.
package bpred

import (
	"fmt"

	"phelps/internal/codec"
)

// StateCodec is implemented by predictors whose trained state can round-trip
// through bytes. All predictors in this package implement it.
type StateCodec interface {
	// AppendState appends the predictor's dynamic state to b.
	AppendState(b []byte) []byte
	// LoadState replaces the predictor's dynamic state from the reader,
	// consuming exactly what AppendState wrote. The predictor must have been
	// constructed with the same configuration as the saved one.
	LoadState(r *codec.Reader) error
}

// Per-predictor kind tags: the first state byte, checked on load so a blob
// cannot be decoded into the wrong predictor type.
const (
	stateBimodal = 'B'
	stateGshare  = 'G'
	statePerfect = 'P'
	stateTAGE    = 'T'
)

func checkKind(r *codec.Reader, want uint8, name string) error {
	if got := r.U8(); got != want {
		if err := r.Err(); err != nil {
			return err
		}
		return fmt.Errorf("bpred: state kind %q, want %q (%s)", got, want, name)
	}
	return nil
}

func appendStats(b []byte, s *Stats) []byte {
	b = codec.U64(b, s.Lookups)
	return codec.U64(b, s.PredTaken)
}

func loadStats(r *codec.Reader, s *Stats) {
	s.Lookups = r.U64()
	s.PredTaken = r.U64()
}

func appendCtr2s(b []byte, t []ctr2) []byte {
	b = codec.U32(b, uint32(len(t)))
	for _, c := range t {
		b = append(b, byte(c))
	}
	return b
}

func loadCtr2s(r *codec.Reader, t []ctr2, what string) error {
	n := int(r.U32())
	if r.Err() == nil && n != len(t) {
		return fmt.Errorf("bpred: %s has %d entries, state has %d", what, len(t), n)
	}
	raw := r.Bytes(n)
	if raw == nil {
		return r.Err()
	}
	for i, v := range raw {
		t[i] = ctr2(v)
	}
	return nil
}

// --- Bimodal ---

// AppendState implements StateCodec.
func (b *Bimodal) AppendState(buf []byte) []byte {
	buf = codec.U8(buf, stateBimodal)
	buf = appendStats(buf, &b.Stats)
	return appendCtr2s(buf, b.table)
}

// LoadState implements StateCodec.
func (b *Bimodal) LoadState(r *codec.Reader) error {
	if err := checkKind(r, stateBimodal, "bimodal"); err != nil {
		return err
	}
	loadStats(r, &b.Stats)
	if err := loadCtr2s(r, b.table, "bimodal table"); err != nil {
		return err
	}
	return r.Err()
}

// --- Gshare ---

// AppendState implements StateCodec.
func (g *Gshare) AppendState(buf []byte) []byte {
	buf = codec.U8(buf, stateGshare)
	buf = appendStats(buf, &g.Stats)
	buf = appendCtr2s(buf, g.table)
	return codec.U64(buf, g.hist)
}

// LoadState implements StateCodec.
func (g *Gshare) LoadState(r *codec.Reader) error {
	if err := checkKind(r, stateGshare, "gshare"); err != nil {
		return err
	}
	loadStats(r, &g.Stats)
	if err := loadCtr2s(r, g.table, "gshare table"); err != nil {
		return err
	}
	g.hist = r.U64()
	return r.Err()
}

// --- Perfect ---

// AppendState implements StateCodec (the oracle is stateless; one tag byte).
func (Perfect) AppendState(buf []byte) []byte { return codec.U8(buf, statePerfect) }

// LoadState implements StateCodec.
func (Perfect) LoadState(r *codec.Reader) error { return checkKind(r, statePerfect, "perfect") }

// --- TAGE ---

// AppendState implements StateCodec: base and tagged tables, the folded
// history registers (only comp is dynamic; the fold geometry is config), the
// outcome ring, the use-alt and allocation-seed registers, and the loop
// predictor and statistical corrector tables when configured.
func (t *TAGE) AppendState(buf []byte) []byte {
	buf = codec.U8(buf, stateTAGE)
	buf = appendStats(buf, &t.Stats)
	buf = appendCtr2s(buf, t.base)
	for i := range t.tables {
		tt := &t.tables[i]
		buf = codec.U32(buf, uint32(len(tt.entries)))
		for _, e := range tt.entries {
			buf = codec.U16(buf, e.tag)
			buf = codec.U8(buf, uint8(e.ctr))
			buf = codec.U8(buf, e.u)
		}
		buf = codec.U64(buf, tt.foldIdx.comp)
		buf = codec.U64(buf, tt.foldTag0.comp)
		buf = codec.U64(buf, tt.foldTag1.comp)
	}
	buf = append(buf, t.ghist[:]...)
	buf = codec.U32(buf, uint32(t.ghead))
	buf = codec.U8(buf, uint8(t.useAlt))
	buf = codec.U64(buf, t.allocSeed)
	buf = codec.Bool(buf, t.loop != nil)
	if t.loop != nil {
		buf = codec.U32(buf, uint32(len(t.loop.entries)))
		for _, e := range t.loop.entries {
			buf = codec.U16(buf, e.tag)
			buf = codec.U16(buf, e.tripCount)
			buf = codec.U16(buf, e.current)
			buf = codec.U8(buf, e.conf)
			buf = codec.Bool(buf, e.valid)
		}
	}
	buf = codec.Bool(buf, t.sc != nil)
	if t.sc != nil {
		buf = codec.U32(buf, uint32(len(t.sc.bias)))
		for _, v := range t.sc.bias {
			buf = codec.U8(buf, uint8(v))
		}
		for _, v := range t.sc.hist {
			buf = codec.U8(buf, uint8(v))
		}
	}
	return buf
}

// LoadState implements StateCodec.
func (t *TAGE) LoadState(r *codec.Reader) error {
	if err := checkKind(r, stateTAGE, "tage"); err != nil {
		return err
	}
	loadStats(r, &t.Stats)
	if err := loadCtr2s(r, t.base, "tage base"); err != nil {
		return err
	}
	for i := range t.tables {
		tt := &t.tables[i]
		n := int(r.U32())
		if r.Err() == nil && n != len(tt.entries) {
			return fmt.Errorf("bpred: tage table %d has %d entries, state has %d", i, len(tt.entries), n)
		}
		raw := r.Bytes(n * 4)
		if raw == nil {
			return r.Err()
		}
		for j := range tt.entries {
			e := &tt.entries[j]
			e.tag = uint16(raw[j*4]) | uint16(raw[j*4+1])<<8
			e.ctr = int8(raw[j*4+2])
			e.u = raw[j*4+3]
		}
		tt.foldIdx.comp = r.U64()
		tt.foldTag0.comp = r.U64()
		tt.foldTag1.comp = r.U64()
	}
	if raw := r.Bytes(len(t.ghist)); raw != nil {
		copy(t.ghist[:], raw)
	}
	t.ghead = int(r.U32())
	t.useAlt = int8(r.U8())
	t.allocSeed = r.U64()
	if r.Err() == nil && (t.ghead < 0 || t.ghead >= histMaxBits) {
		return fmt.Errorf("bpred: tage ghead %d out of range", t.ghead)
	}
	hasLoop := r.Bool()
	if r.Err() == nil && hasLoop != (t.loop != nil) {
		return fmt.Errorf("bpred: tage loop-predictor presence mismatch (state %v, config %v)", hasLoop, t.loop != nil)
	}
	if hasLoop && t.loop != nil {
		n := int(r.U32())
		if r.Err() == nil && n != len(t.loop.entries) {
			return fmt.Errorf("bpred: tage loop table has %d entries, state has %d", len(t.loop.entries), n)
		}
		for j := 0; j < n && r.Err() == nil; j++ {
			e := &t.loop.entries[j]
			e.tag = r.U16()
			e.tripCount = r.U16()
			e.current = r.U16()
			e.conf = r.U8()
			e.valid = r.Bool()
		}
	}
	hasSC := r.Bool()
	if r.Err() == nil && hasSC != (t.sc != nil) {
		return fmt.Errorf("bpred: tage statistical-corrector presence mismatch (state %v, config %v)", hasSC, t.sc != nil)
	}
	if hasSC && t.sc != nil {
		n := int(r.U32())
		if r.Err() == nil && n != len(t.sc.bias) {
			return fmt.Errorf("bpred: tage sc tables have %d entries, state has %d", len(t.sc.bias), n)
		}
		if raw := r.Bytes(n); raw != nil {
			for j, v := range raw {
				t.sc.bias[j] = int8(v)
			}
		}
		if raw := r.Bytes(n); raw != nil {
			for j, v := range raw {
				t.sc.hist[j] = int8(v)
			}
		}
	}
	return r.Err()
}
