package fsio

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a")
	if err := OS.WriteFile(path, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := OS.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	f, err := OS.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(" world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ = OS.ReadFile(path)
	if string(got) != "hello world" {
		t.Fatalf("after append: %q", got)
	}
}

func TestFaultFSFailWrites(t *testing.T) {
	dir := t.TempDir()
	ffs := &FaultFS{}
	ffs.FailWrites(ErrNoSpace)

	path := filepath.Join(dir, "a")
	if err := ffs.WriteFile(path, []byte("x"), 0o644); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("WriteFile err = %v, want ENOSPC", err)
	}
	if _, err := ffs.OpenAppend(path); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("OpenAppend err = %v, want ENOSPC", err)
	}
	if _, err := ffs.CreateTemp(dir, "t*"); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("CreateTemp err = %v, want ENOSPC", err)
	}
	if err := ffs.MkdirAll(filepath.Join(dir, "sub"), 0o755); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("MkdirAll err = %v, want ENOSPC", err)
	}
	if got := ffs.FailedOps(); got != 4 {
		t.Errorf("FailedOps = %d, want 4", got)
	}

	// Disarm: everything works again.
	ffs.FailWrites(nil)
	if err := ffs.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatalf("after disarm: %v", err)
	}
}

func TestFaultFSTornWrites(t *testing.T) {
	dir := t.TempDir()
	ffs := &FaultFS{}
	ffs.TornWrites(true)

	// WriteFile reports success but persists only a prefix.
	path := filepath.Join(dir, "a")
	if err := ffs.WriteFile(path, []byte("0123456789"), 0o644); err != nil {
		t.Fatalf("torn WriteFile should report success, got %v", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "01234" {
		t.Fatalf("torn WriteFile persisted %q, want half", got)
	}

	// Streamed appends tear the same way while reporting full length.
	f, err := ffs.OpenAppend(filepath.Join(dir, "b"))
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdefgh"))
	if err != nil || n != 8 {
		t.Fatalf("torn append = %d, %v, want 8, nil", n, err)
	}
	f.Close()
	got, _ = os.ReadFile(filepath.Join(dir, "b"))
	if string(got) != "abcd" {
		t.Fatalf("torn append persisted %q, want half", got)
	}
	if ffs.TornOps() != 2 {
		t.Errorf("TornOps = %d, want 2", ffs.TornOps())
	}
}

func TestFaultFSBitRot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a")
	if err := os.WriteFile(path, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	ffs := &FaultFS{}
	ffs.BitRot(true)
	got, err := ffs.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) == "0123456789" {
		t.Fatal("bit-rot read came back clean")
	}
	if ffs.RottenReads() != 1 {
		t.Errorf("RottenReads = %d, want 1", ffs.RottenReads())
	}
	// The file itself is untouched; only the read was corrupted.
	ffs.BitRot(false)
	got, _ = ffs.ReadFile(path)
	if string(got) != "0123456789" {
		t.Fatalf("disk was mutated: %q", got)
	}
}

// TestFaultFSConcurrent arms and disarms faults while readers and writers
// hammer the FS; run under -race.
func TestFaultFSConcurrent(t *testing.T) {
	dir := t.TempDir()
	ffs := &FaultFS{}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := filepath.Join(dir, "f")
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = ffs.WriteFile(path, []byte("data"), 0o644)
				_, _ = ffs.ReadFile(path)
			}
		}(i)
	}
	for i := 0; i < 100; i++ {
		ffs.TornWrites(i%2 == 0)
		ffs.BitRot(i%3 == 0)
		if i%5 == 0 {
			ffs.FailWrites(ErrNoSpace)
		} else {
			ffs.FailWrites(nil)
		}
	}
	close(stop)
	wg.Wait()
}
