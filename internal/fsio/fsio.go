// Package fsio is the file-I/O seam shared by every persistence layer in the
// simulator: the phelpsd results cache, the sampled-simulation checkpoint
// cache, and the daemon's write-ahead job journal. Each of those stores
// promises to degrade gracefully — a torn write, a full disk, or a flipped
// bit must become a counted miss or a counted error, never a crash and never
// a wrong result. That promise is only testable if the disk can be made to
// misbehave on demand, so the stores take an FS instead of calling the os
// package directly, and FaultFS injects the three canonical disk faults:
//
//   - torn writes: a write reports success but only a prefix reaches disk,
//     exactly what a power cut mid-write leaves behind;
//   - ENOSPC: writes and file creation fail outright;
//   - bit-rot: reads succeed but one byte has silently flipped.
//
// Production code always uses OS (the thinnest possible veneer over the os
// package); FaultFS exists for tests and chaos harnesses.
package fsio

import (
	"io"
	"io/fs"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
)

// File is the writable-file surface the stores need: append/stream writes,
// durability, and a name for the temp-file + rename idiom.
type File interface {
	io.Writer
	io.Closer
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Name returns the path the file was opened with.
	Name() string
}

// FS abstracts the handful of filesystem operations the persistence layers
// use. Implementations must be safe for concurrent use.
type FS interface {
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm fs.FileMode) error
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm fs.FileMode) error
	Stat(name string) (fs.FileInfo, error)
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	return os.WriteFile(name, data, perm)
}
func (osFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}
func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }

// FaultFS wraps an FS and injects disk faults on demand. The zero value with
// Under set behaves exactly like the wrapped FS; faults are armed by the
// setter methods and apply to every subsequent matching operation until
// disarmed. Safe for concurrent use.
type FaultFS struct {
	// Under is the wrapped filesystem (nil = OS).
	Under FS

	mu       sync.Mutex
	writeErr error // non-nil: writes, creates, renames, mkdirs fail with this
	torn     bool  // writes report success but persist only a prefix
	bitRot   bool  // reads flip one byte

	writes, tornWrites, failedOps, rottenReads atomic.Uint64
}

// ErrNoSpace is the canonical injected write failure (ENOSPC).
var ErrNoSpace error = syscall.ENOSPC

func (f *FaultFS) under() FS {
	if f.Under == nil {
		return OS
	}
	return f.Under
}

// FailWrites arms (err != nil) or disarms (err == nil) hard write failures:
// WriteFile, OpenAppend, CreateTemp, Rename, MkdirAll, and File.Write all
// return err while armed.
func (f *FaultFS) FailWrites(err error) {
	f.mu.Lock()
	f.writeErr = err
	f.mu.Unlock()
}

// TornWrites arms or disarms torn writes: while armed, WriteFile and
// File.Write report full success but persist only the first half of the
// payload — the on-disk shape of a crash mid-write.
func (f *FaultFS) TornWrites(on bool) {
	f.mu.Lock()
	f.torn = on
	f.mu.Unlock()
}

// BitRot arms or disarms read corruption: while armed, every non-empty
// ReadFile result comes back with one byte flipped.
func (f *FaultFS) BitRot(on bool) {
	f.mu.Lock()
	f.bitRot = on
	f.mu.Unlock()
}

// FailedOps counts operations refused by an armed FailWrites.
func (f *FaultFS) FailedOps() uint64 { return f.failedOps.Load() }

// TornOps counts writes that were silently truncated.
func (f *FaultFS) TornOps() uint64 { return f.tornWrites.Load() }

// RottenReads counts reads that came back corrupted.
func (f *FaultFS) RottenReads() uint64 { return f.rottenReads.Load() }

func (f *FaultFS) writeFault() (error, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.writeErr != nil {
		f.failedOps.Add(1)
		return f.writeErr, false
	}
	return nil, f.torn
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	data, err := f.under().ReadFile(name)
	if err != nil {
		return data, err
	}
	f.mu.Lock()
	rot := f.bitRot
	f.mu.Unlock()
	if rot && len(data) > 0 {
		f.rottenReads.Add(1)
		data[len(data)/2] ^= 0x40
	}
	return data, nil
}

func (f *FaultFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	err, torn := f.writeFault()
	if err != nil {
		return err
	}
	f.writes.Add(1)
	if torn {
		f.tornWrites.Add(1)
		return f.under().WriteFile(name, data[:len(data)/2], perm)
	}
	return f.under().WriteFile(name, data, perm)
}

func (f *FaultFS) OpenAppend(name string) (File, error) {
	if err, _ := f.writeFault(); err != nil {
		return nil, err
	}
	file, err := f.under().OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if err, _ := f.writeFault(); err != nil {
		return nil, err
	}
	file, err := f.under().CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err, _ := f.writeFault(); err != nil {
		return err
	}
	return f.under().Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error { return f.under().Remove(name) }

func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	if err, _ := f.writeFault(); err != nil {
		return err
	}
	return f.under().MkdirAll(path, perm)
}

func (f *FaultFS) Stat(name string) (fs.FileInfo, error) { return f.under().Stat(name) }

// faultFile applies the owning FaultFS's write faults to streamed writes.
// A torn stream write persists half the payload but reports len(p), so the
// caller believes the append landed — the torn tail is only discovered on
// the next read, exactly like a real crash.
type faultFile struct {
	File
	fs *FaultFS
}

func (f *faultFile) Write(p []byte) (int, error) {
	err, torn := f.fs.writeFault()
	if err != nil {
		return 0, err
	}
	f.fs.writes.Add(1)
	if torn {
		f.fs.tornWrites.Add(1)
		if _, werr := f.File.Write(p[:len(p)/2]); werr != nil {
			return 0, werr
		}
		return len(p), nil
	}
	return f.File.Write(p)
}
