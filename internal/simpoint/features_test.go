package simpoint

import (
	"math"
	"reflect"
	"testing"
)

func TestIntervalFeaturesSteadySinglePhase(t *testing.T) {
	// Ten identical single-block intervals: no churn, full concentration,
	// zero entropy.
	ivs := make([]map[uint64]float64, 10)
	for i := range ivs {
		ivs[i] = map[uint64]float64{7: 100}
	}
	f := IntervalFeatures(ivs)
	if f.Intervals != 10 || f.CodeBlocks != 1 {
		t.Fatalf("counts = %d/%d, want 10/1", f.Intervals, f.CodeBlocks)
	}
	if f.PhaseChurn != 0 || f.MaxChurn != 0 {
		t.Errorf("churn = %v/%v, want 0/0", f.PhaseChurn, f.MaxChurn)
	}
	if f.Concentration != 1 || f.Entropy != 0 {
		t.Errorf("concentration/entropy = %v/%v, want 1/0", f.Concentration, f.Entropy)
	}
}

func TestIntervalFeaturesDisjointPhases(t *testing.T) {
	// Two disjoint-code phases: the single transition has Manhattan
	// distance 2 between normalized vectors.
	ivs := []map[uint64]float64{
		{1: 50, 2: 50},
		{1: 50, 2: 50},
		{8: 50, 9: 50},
		{8: 50, 9: 50},
	}
	f := IntervalFeatures(ivs)
	if f.CodeBlocks != 4 {
		t.Errorf("code blocks = %d, want 4", f.CodeBlocks)
	}
	if math.Abs(f.MaxChurn-2) > 1e-12 {
		t.Errorf("max churn = %v, want 2", f.MaxChurn)
	}
	if math.Abs(f.PhaseChurn-2.0/3.0) > 1e-12 {
		t.Errorf("mean churn = %v, want 2/3", f.PhaseChurn)
	}
	// Uniform over two blocks: concentration 1/2, normalized entropy 1.
	if math.Abs(f.Concentration-0.5) > 1e-12 || math.Abs(f.Entropy-1) > 1e-12 {
		t.Errorf("concentration/entropy = %v/%v, want 0.5/1", f.Concentration, f.Entropy)
	}
}

func TestIntervalFeaturesEmpty(t *testing.T) {
	if f := IntervalFeatures(nil); f != (Features{}) {
		t.Errorf("empty input = %+v, want zero value", f)
	}
}

func TestFeatureVectorMatchesNames(t *testing.T) {
	f := Features{Intervals: 3, CodeBlocks: 5, PhaseChurn: 0.25, MaxChurn: 0.5, Concentration: 0.75, Entropy: 0.1}
	v := f.Vector()
	if len(v) != len(FeatureNames()) {
		t.Fatalf("vector len %d != names len %d", len(v), len(FeatureNames()))
	}
	want := []float64{3, 5, 0.25, 0.5, 0.75, 0.1}
	if !reflect.DeepEqual(v, want) {
		t.Errorf("vector = %v, want %v", v, want)
	}
}

func TestIntervalFeaturesDeterministic(t *testing.T) {
	// Same content built with different map insertion orders must summarize
	// identically (bit-for-bit), since the model trained on these features
	// must serialize byte-identically.
	build := func(reverse bool) []map[uint64]float64 {
		keys := []uint64{3, 11, 42, 100, 255}
		ivs := make([]map[uint64]float64, 6)
		for i := range ivs {
			m := make(map[uint64]float64)
			if reverse {
				for j := len(keys) - 1; j >= 0; j-- {
					m[keys[j]] = float64((i+1)*int(keys[j])) * 0.37
				}
			} else {
				for _, k := range keys {
					m[k] = float64((i+1)*int(k)) * 0.37
				}
			}
			ivs[i] = m
		}
		return ivs
	}
	a, b := IntervalFeatures(build(false)), IntervalFeatures(build(true))
	if a != b {
		t.Errorf("feature summaries differ across insertion orders:\n%+v\n%+v", a, b)
	}
}
