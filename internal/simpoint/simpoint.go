// Package simpoint implements a compact version of the SimPoints methodology
// [Sherwood et al., ASPLOS 2002] the paper uses to pick representative
// regions: the dynamic instruction stream is chunked into fixed-size
// intervals, each interval is summarized by its basic-block vector (BBV),
// the vectors are clustered with k-means, and the interval closest to each
// centroid becomes a SimPoint with a weight proportional to its cluster
// size.
package simpoint

import (
	"sort"

	"phelps/internal/graph"
)

// BBVCollector accumulates basic-block vectors over fixed instruction
// intervals. Feed it retired control-flow edges (or simply PCs of retired
// basic-block heads); it chunks them into intervals.
type BBVCollector struct {
	intervalLen uint64
	count       uint64
	current     map[uint64]float64
	intervals   []map[uint64]float64
}

// NewBBVCollector returns a collector with the given interval length in
// instructions.
func NewBBVCollector(intervalLen uint64) *BBVCollector {
	return &BBVCollector{
		intervalLen: intervalLen,
		current:     make(map[uint64]float64),
	}
}

// Observe records one retired instruction at pc; basic blocks are
// approximated by 32-byte PC regions (8 instructions), which is faithful
// enough for clustering.
func (c *BBVCollector) Observe(pc uint64) {
	c.current[pc>>5]++
	c.count++
	if c.count%c.intervalLen == 0 {
		c.intervals = append(c.intervals, c.current)
		c.current = make(map[uint64]float64)
	}
}

// Flush closes the final partial interval if it covers at least half the
// interval length.
func (c *BBVCollector) Flush() {
	if uint64(len(c.current)) > 0 && c.count%c.intervalLen >= c.intervalLen/2 {
		c.intervals = append(c.intervals, c.current)
	}
	c.current = make(map[uint64]float64)
}

// Intervals returns the collected BBVs.
func (c *BBVCollector) Intervals() []map[uint64]float64 { return c.intervals }

// SimPoint is one representative interval.
type SimPoint struct {
	Interval int     // index of the representative interval
	Weight   float64 // fraction of intervals in its cluster
}

// Pick clusters the intervals into at most k clusters (k-means with random
// restarts on the sparse BBVs, L1-normalized) and returns one SimPoint per
// non-empty cluster, sorted by weight descending. Deterministic for a given
// seed.
func Pick(intervals []map[uint64]float64, k int, seed uint64) []SimPoint {
	n := len(intervals)
	if n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	norm := make([]map[uint64]float64, n)
	for i, v := range intervals {
		norm[i] = normalize(v)
	}
	r := graph.NewRand(seed)

	// k-means++ style init: first centroid random, the rest far away.
	centroids := make([]map[uint64]float64, 0, k)
	centroids = append(centroids, clone(norm[r.Intn(n)]))
	for len(centroids) < k {
		best, bestD := 0, -1.0
		for i := 0; i < n; i++ {
			d := minDist(norm[i], centroids)
			if d > bestD {
				best, bestD = i, d
			}
		}
		if bestD <= 0 {
			break // all remaining points coincide with centroids
		}
		centroids = append(centroids, clone(norm[best]))
	}

	assign := make([]int, n)
	for iter := 0; iter < 20; iter++ {
		changed := false
		for i := 0; i < n; i++ {
			bi, bd := 0, dist(norm[i], centroids[0])
			for j := 1; j < len(centroids); j++ {
				if d := dist(norm[i], centroids[j]); d < bd {
					bi, bd = j, d
				}
			}
			if assign[i] != bi {
				assign[i] = bi
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		for j := range centroids {
			sum := make(map[uint64]float64)
			cnt := 0
			for i := 0; i < n; i++ {
				if assign[i] != j {
					continue
				}
				cnt++
				for b, w := range norm[i] {
					sum[b] += w
				}
			}
			if cnt == 0 {
				continue
			}
			for b := range sum {
				sum[b] /= float64(cnt)
			}
			centroids[j] = sum
		}
	}

	// Representative = interval closest to its centroid; weight = cluster
	// fraction.
	type cluster struct {
		rep    int
		repD   float64
		member int
	}
	cl := make([]cluster, len(centroids))
	for j := range cl {
		cl[j] = cluster{rep: -1}
	}
	for i := 0; i < n; i++ {
		j := assign[i]
		d := dist(norm[i], centroids[j])
		if cl[j].rep < 0 || d < cl[j].repD {
			cl[j].rep, cl[j].repD = i, d
		}
		cl[j].member++
	}
	var out []SimPoint
	for _, c := range cl {
		if c.rep >= 0 && c.member > 0 {
			out = append(out, SimPoint{Interval: c.rep, Weight: float64(c.member) / float64(n)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Interval < out[j].Interval
	})
	return out
}

func normalize(v map[uint64]float64) map[uint64]float64 {
	var sum float64
	for _, w := range v {
		sum += w
	}
	out := make(map[uint64]float64, len(v))
	if sum == 0 {
		return out
	}
	for b, w := range v {
		out[b] = w / sum
	}
	return out
}

func clone(v map[uint64]float64) map[uint64]float64 {
	out := make(map[uint64]float64, len(v))
	for b, w := range v {
		out[b] = w
	}
	return out
}

// dist is the Manhattan distance between sparse vectors.
func dist(a, b map[uint64]float64) float64 {
	var d float64
	for k, av := range a {
		bv := b[k]
		if av > bv {
			d += av - bv
		} else {
			d += bv - av
		}
	}
	for k, bv := range b {
		if _, ok := a[k]; !ok {
			d += bv
		}
	}
	return d
}

func minDist(v map[uint64]float64, cs []map[uint64]float64) float64 {
	best := -1.0
	for _, c := range cs {
		d := dist(v, c)
		if best < 0 || d < best {
			best = d
		}
	}
	return best
}
