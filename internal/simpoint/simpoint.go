// Package simpoint implements a compact version of the SimPoints methodology
// [Sherwood et al., ASPLOS 2002] the paper uses to pick representative
// regions: the dynamic instruction stream is chunked into fixed-size
// intervals, each interval is summarized by its basic-block vector (BBV),
// the vectors are clustered with k-means, and each cluster contributes
// size-proportional representative intervals (SimPoints) whose weights sum
// to its share of the run.
package simpoint

import (
	"sort"

	"phelps/internal/graph"
)

// BBVCollector accumulates basic-block vectors over fixed instruction
// intervals. Feed it retired control-flow edges (or simply PCs of retired
// basic-block heads); it chunks them into intervals.
type BBVCollector struct {
	intervalLen uint64
	count       uint64
	current     map[uint64]float64
	intervals   []map[uint64]float64
}

// NewBBVCollector returns a collector with the given interval length in
// instructions.
func NewBBVCollector(intervalLen uint64) *BBVCollector {
	return &BBVCollector{
		intervalLen: intervalLen,
		current:     make(map[uint64]float64),
	}
}

// Observe records one retired instruction at pc; basic blocks are
// approximated by 32-byte PC regions (8 instructions), which is faithful
// enough for clustering.
func (c *BBVCollector) Observe(pc uint64) {
	c.current[pc>>5]++
	c.count++
	if c.count%c.intervalLen == 0 {
		c.intervals = append(c.intervals, c.current)
		c.current = make(map[uint64]float64)
	}
}

// Flush closes the final partial interval if it covers at least half the
// interval length.
func (c *BBVCollector) Flush() {
	if uint64(len(c.current)) > 0 && c.count%c.intervalLen >= c.intervalLen/2 {
		c.intervals = append(c.intervals, c.current)
	}
	c.current = make(map[uint64]float64)
}

// ObserveBlock records one retired basic block of n instructions headed at
// pc. It is the batch form of Observe that emu.FastForward's Block callback
// feeds: all n instructions are credited to the head's BBV dimension, and a
// block spanning an interval boundary is split exactly so every interval
// holds precisely intervalLen instructions.
func (c *BBVCollector) ObserveBlock(pc, n uint64) {
	key := pc >> 5
	for n > 0 {
		room := c.intervalLen - c.count%c.intervalLen
		take := n
		if take > room {
			take = room
		}
		c.current[key] += float64(take)
		c.count += take
		n -= take
		if take == room {
			c.intervals = append(c.intervals, c.current)
			c.current = make(map[uint64]float64)
		}
	}
}

// Intervals returns the collected BBVs.
func (c *BBVCollector) Intervals() []map[uint64]float64 { return c.intervals }

// Block is one retired basic block: head PC and instruction count. A flat
// []Block is the cheapest profile a functional pass can record (append-only,
// no map work per block); ChunkBlocks turns it into interval BBVs afterward.
type Block struct {
	Head uint64
	N    uint64
}

// ChunkBlocks chunks a block stream into interval BBVs of exactly
// intervalLen instructions each (the final partial interval is kept if it
// covers at least half the interval, as in Flush).
func ChunkBlocks(blocks []Block, intervalLen uint64) []map[uint64]float64 {
	c := NewBBVCollector(intervalLen)
	for _, b := range blocks {
		c.ObserveBlock(b.Head, b.N)
	}
	c.Flush()
	return c.Intervals()
}

// MergeIntervals coalesces each group of g consecutive interval BBVs into
// one (summing vectors). A final partial group is kept only if it covers at
// least half a merged interval, mirroring Flush. It lets a profiling pass
// collect BBVs live at a fine fixed grain before the final interval length
// — a multiple of that grain — is known.
func MergeIntervals(ivs []map[uint64]float64, g int) []map[uint64]float64 {
	if g <= 1 {
		return ivs
	}
	out := make([]map[uint64]float64, 0, (len(ivs)+g-1)/g)
	for lo := 0; lo < len(ivs); lo += g {
		hi := lo + g
		if hi > len(ivs) {
			if 2*(len(ivs)-lo) < g {
				break
			}
			hi = len(ivs)
		}
		m := make(map[uint64]float64, len(ivs[lo]))
		for _, iv := range ivs[lo:hi] {
			for k, v := range iv {
				m[k] += v
			}
		}
		out = append(out, m)
	}
	return out
}

// SimPoint is one representative interval.
type SimPoint struct {
	Interval int     // index of the representative interval
	Weight   float64 // fraction of intervals in its cluster
}

// Pick clusters the intervals into at most k clusters (k-means with random
// restarts on the sparse BBVs, L1-normalized) and returns weighted
// SimPoints sorted by weight descending. Each non-empty cluster yields
// representatives proportional to its size — about k points in total,
// never more than 2k — spread across the cluster's temporal extent so a
// phase whose BBVs collapse into one cluster is not represented solely by
// its (cold) earliest interval. Deterministic for a given seed.
func Pick(intervals []map[uint64]float64, k int, seed uint64) []SimPoint {
	n := len(intervals)
	if n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	norm := make([]bbvec, n)
	for i, v := range intervals {
		norm[i] = toVec(v).normalize()
	}
	r := graph.NewRand(seed)

	// k-means++ style init: first centroid random, the rest far away.
	// Centroid entries are only ever replaced wholesale, so sharing a
	// member's backing slices is safe.
	centroids := make([]bbvec, 0, k)
	centroids = append(centroids, norm[r.Intn(n)])
	for len(centroids) < k {
		best, bestD := 0, -1.0
		for i := 0; i < n; i++ {
			d := minDist(norm[i], centroids)
			if d > bestD {
				best, bestD = i, d
			}
		}
		if bestD <= 0 {
			break // all remaining points coincide with centroids
		}
		centroids = append(centroids, norm[best])
	}

	assign := make([]int, n)
	for iter := 0; iter < 10; iter++ {
		changed := false
		for i := 0; i < n; i++ {
			bi, bd := 0, vdist(norm[i], centroids[0])
			for j := 1; j < len(centroids); j++ {
				if d := vdist(norm[i], centroids[j]); d < bd {
					bi, bd = j, d
				}
			}
			if assign[i] != bi {
				assign[i] = bi
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids. Per-key sums accumulate in ascending member
		// order (the map only stores; no cross-key reduction), so the result
		// is deterministic; the extraction sort fixes the key order.
		for j := range centroids {
			sum := make(map[uint64]float64)
			cnt := 0
			for i := 0; i < n; i++ {
				if assign[i] != j {
					continue
				}
				cnt++
				v := &norm[i]
				for t, b := range v.keys {
					sum[b] += v.ws[t]
				}
			}
			if cnt == 0 {
				continue
			}
			c := toVec(sum)
			for t := range c.ws {
				c.ws[t] /= float64(cnt)
			}
			centroids[j] = c
		}
	}

	// Stratified representatives: each cluster gets reps proportional to its
	// share of the run (at least one, at most its member count), spread over
	// contiguous temporal segments of its member list. BBVs capture code, not
	// data — a big cluster of identical-code intervals can still ramp in
	// performance as caches warm over the run, and a single early
	// representative would bias the whole cluster cold. Within a segment the
	// rep is the member closest to the centroid; (near-)ties break toward the
	// segment's temporal median.
	type cluster struct {
		members []int
		dists   []float64
	}
	cl := make([]cluster, len(centroids))
	for i := 0; i < n; i++ {
		j := assign[i]
		cl[j].members = append(cl[j].members, i)
		cl[j].dists = append(cl[j].dists, vdist(norm[i], centroids[j]))
	}
	var out []SimPoint
	for _, c := range cl {
		m := len(c.members)
		if m == 0 {
			continue
		}
		reps := int(float64(k)*float64(m)/float64(n) + 0.5)
		if reps < 1 {
			reps = 1
		}
		if reps > m {
			reps = m
		}
		for s := 0; s < reps; s++ {
			lo, hi := s*m/reps, (s+1)*m/reps
			dmin := c.dists[lo]
			for i := lo + 1; i < hi; i++ {
				if c.dists[i] < dmin {
					dmin = c.dists[i]
				}
			}
			const eps = 1e-9
			mid := c.members[(lo+hi)/2]
			rep, repGap := -1, 0
			for i := lo; i < hi; i++ {
				if c.dists[i] > dmin+eps {
					continue
				}
				gap := c.members[i] - mid
				if gap < 0 {
					gap = -gap
				}
				if rep < 0 || gap < repGap {
					rep, repGap = c.members[i], gap
				}
			}
			out = append(out, SimPoint{Interval: rep, Weight: float64(hi-lo) / float64(n)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Interval < out[j].Interval
	})
	return out
}

// bbvec is a sparse BBV with keys in ascending order. Every float reduction
// over one (normalization sums, distances, centroid averages) walks the keys
// in this single fixed order. Reducing over map iteration order instead would
// make the non-associative float sums — and through them k-means tie-breaks,
// the picked points, and the whole sampled Result — vary from process to
// process.
type bbvec struct {
	keys []uint64
	ws   []float64
}

// toVec sorts a sparse map into a bbvec.
func toVec(v map[uint64]float64) bbvec {
	keys := make([]uint64, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	ws := make([]float64, len(keys))
	for i, k := range keys {
		ws[i] = v[k]
	}
	return bbvec{keys: keys, ws: ws}
}

// normalize scales the vector to sum 1 (key order, so the sum is exact).
func (v bbvec) normalize() bbvec {
	var sum float64
	for _, w := range v.ws {
		sum += w
	}
	out := bbvec{keys: v.keys, ws: make([]float64, len(v.ws))}
	if sum == 0 {
		return out
	}
	for i, w := range v.ws {
		out.ws[i] = w / sum
	}
	return out
}

// vdist is the Manhattan distance between sorted sparse vectors: a linear
// merge walk, accumulating in ascending key order.
func vdist(a, b bbvec) float64 {
	var d float64
	i, j := 0, 0
	for i < len(a.keys) && j < len(b.keys) {
		switch {
		case a.keys[i] < b.keys[j]:
			d += a.ws[i]
			i++
		case a.keys[i] > b.keys[j]:
			d += b.ws[j]
			j++
		default:
			if a.ws[i] > b.ws[j] {
				d += a.ws[i] - b.ws[j]
			} else {
				d += b.ws[j] - a.ws[i]
			}
			i++
			j++
		}
	}
	for ; i < len(a.keys); i++ {
		d += a.ws[i]
	}
	for ; j < len(b.keys); j++ {
		d += b.ws[j]
	}
	return d
}

// dist is the Manhattan distance between sparse map vectors (deterministic:
// both sides are key-sorted before accumulating).
func dist(a, b map[uint64]float64) float64 {
	return vdist(toVec(a), toVec(b))
}

func minDist(v bbvec, cs []bbvec) float64 {
	best := -1.0
	for _, c := range cs {
		d := vdist(v, c)
		if best < 0 || d < best {
			best = d
		}
	}
	return best
}
