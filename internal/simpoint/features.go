package simpoint

import "math"

// Features is a fixed-length numeric summary of a workload's interval BBVs —
// the phase-behavior half of the perfmodel feature vector. Every field is a
// scale-free statistic over the normalized interval vectors, so workloads of
// different lengths and instruction counts are comparable.
//
// All reductions run over key-sorted sparse vectors (bbvec), never map
// iteration, so the summary is bit-identical across processes — the model
// trained on these features must serialize byte-identically (see
// perfmodel's determinism tests).
type Features struct {
	Intervals  int // interval count after chunking
	CodeBlocks int // distinct BBV dimensions touched across the run

	// PhaseChurn is the mean Manhattan distance between consecutive
	// normalized interval vectors (0 = one steady phase, 2 = disjoint code
	// every interval); MaxChurn is the largest single transition.
	PhaseChurn float64
	MaxChurn   float64

	// Concentration is the mean per-interval share of the hottest block
	// (1 = each interval spins in a single 32-byte region). Entropy is the
	// mean per-interval Shannon entropy of the block distribution,
	// normalized by log2(dimensions) into [0,1] (0 = single block, 1 =
	// uniform over the interval's footprint).
	Concentration float64
	Entropy       float64
}

// FeatureNames returns the feature labels in the exact order Vector emits
// values, for model metadata and reports.
func FeatureNames() []string {
	return []string{
		"bbv_intervals", "bbv_code_blocks", "bbv_phase_churn",
		"bbv_max_churn", "bbv_concentration", "bbv_entropy",
	}
}

// Vector flattens the summary into the FeatureNames order.
func (f Features) Vector() []float64 {
	return []float64{
		float64(f.Intervals), float64(f.CodeBlocks), f.PhaseChurn,
		f.MaxChurn, f.Concentration, f.Entropy,
	}
}

// IntervalFeatures summarizes interval BBVs (as collected by BBVCollector or
// ChunkBlocks) into a Features vector. Empty input returns the zero value.
func IntervalFeatures(ivs []map[uint64]float64) Features {
	var f Features
	f.Intervals = len(ivs)
	if len(ivs) == 0 {
		return f
	}

	norm := make([]bbvec, len(ivs))
	seen := make(map[uint64]struct{})
	for i, iv := range ivs {
		norm[i] = toVec(iv).normalize()
		for k := range iv {
			seen[k] = struct{}{}
		}
	}
	f.CodeBlocks = len(seen)

	for i := 1; i < len(norm); i++ {
		d := vdist(norm[i-1], norm[i])
		f.PhaseChurn += d
		if d > f.MaxChurn {
			f.MaxChurn = d
		}
	}
	if len(norm) > 1 {
		f.PhaseChurn /= float64(len(norm) - 1)
	}

	for _, v := range norm {
		var top, ent float64
		for _, w := range v.ws {
			if w > top {
				top = w
			}
			if w > 0 {
				ent -= w * math.Log2(w)
			}
		}
		f.Concentration += top
		if n := len(v.ws); n > 1 {
			ent /= math.Log2(float64(n))
		} else {
			ent = 0
		}
		f.Entropy += ent
	}
	f.Concentration /= float64(len(norm))
	f.Entropy /= float64(len(norm))
	return f
}
