package simpoint

import (
	"testing"
	"testing/quick"
)

// synthetic phases: phase A executes PCs around 0x1000, phase B around
// 0x9000; collector should produce clearly clusterable intervals.
func collectPhases(intervalLen uint64, pattern []byte) *BBVCollector {
	c := NewBBVCollector(intervalLen)
	for _, ph := range pattern {
		for i := uint64(0); i < intervalLen; i++ {
			base := uint64(0x1000)
			if ph == 'B' {
				base = 0x9000
			}
			c.Observe(base + (i%16)*4)
		}
	}
	c.Flush()
	return c
}

func TestCollectorChunksIntervals(t *testing.T) {
	c := collectPhases(1000, []byte("AABB"))
	if got := len(c.Intervals()); got != 4 {
		t.Fatalf("intervals = %d, want 4", got)
	}
}

func TestPickSeparatesPhases(t *testing.T) {
	c := collectPhases(1000, []byte("AAAABBBBAAAA"))
	sps := Pick(c.Intervals(), 2, 7)
	if len(sps) != 2 {
		t.Fatalf("simpoints = %d, want 2", len(sps))
	}
	// Weights: 8 A-intervals vs 4 B-intervals.
	if !(sps[0].Weight > sps[1].Weight) {
		t.Errorf("weights not ordered: %+v", sps)
	}
	if w := sps[0].Weight + sps[1].Weight; w < 0.99 || w > 1.01 {
		t.Errorf("weights sum to %v", w)
	}
	// The heavier simpoint must be an A interval (index <4 or >=8).
	rep := sps[0].Interval
	if rep >= 4 && rep < 8 {
		t.Errorf("heavy simpoint %d is a B interval", rep)
	}
}

func TestPickSingleCluster(t *testing.T) {
	c := collectPhases(500, []byte("AAAA"))
	sps := Pick(c.Intervals(), 3, 1)
	// All intervals identical: a single cluster suffices.
	total := 0.0
	for _, s := range sps {
		total += s.Weight
	}
	if total < 0.99 || total > 1.01 {
		t.Errorf("weights sum %v", total)
	}
}

func TestPickDeterministic(t *testing.T) {
	c := collectPhases(1000, []byte("AABBAABB"))
	a := Pick(c.Intervals(), 2, 42)
	b := Pick(c.Intervals(), 2, 42)
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic pick: %+v vs %+v", a, b)
		}
	}
}

func TestPickEmptyAndSmall(t *testing.T) {
	if Pick(nil, 3, 1) != nil {
		t.Error("empty input should give nil")
	}
	c := collectPhases(100, []byte("A"))
	sps := Pick(c.Intervals(), 5, 1)
	if len(sps) != 1 || sps[0].Weight != 1 {
		t.Errorf("single interval: %+v", sps)
	}
}

// Property: weights always sum to ~1 and intervals are valid indices.
func TestPickInvariants_Property(t *testing.T) {
	f := func(seed uint64, pat []bool) bool {
		if len(pat) == 0 || len(pat) > 24 {
			return true
		}
		pattern := make([]byte, len(pat))
		for i, b := range pat {
			if b {
				pattern[i] = 'B'
			} else {
				pattern[i] = 'A'
			}
		}
		c := collectPhases(200, pattern)
		sps := Pick(c.Intervals(), 3, seed)
		sum := 0.0
		for _, s := range sps {
			if s.Interval < 0 || s.Interval >= len(c.Intervals()) {
				return false
			}
			sum += s.Weight
		}
		return sum > 0.99 && sum < 1.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDistSymmetry_Property(t *testing.T) {
	f := func(a, b []uint8) bool {
		va := make(map[uint64]float64)
		vb := make(map[uint64]float64)
		for i, x := range a {
			va[uint64(i%8)] += float64(x)
		}
		for i, x := range b {
			vb[uint64(i%8)] += float64(x)
		}
		return approx(dist(va, vb), dist(vb, va))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func approx(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
