package simpoint

import (
	"testing"
	"testing/quick"
)

// synthetic phases: phase A executes PCs around 0x1000, phase B around
// 0x9000; collector should produce clearly clusterable intervals.
func collectPhases(intervalLen uint64, pattern []byte) *BBVCollector {
	c := NewBBVCollector(intervalLen)
	for _, ph := range pattern {
		for i := uint64(0); i < intervalLen; i++ {
			base := uint64(0x1000)
			if ph == 'B' {
				base = 0x9000
			}
			c.Observe(base + (i%16)*4)
		}
	}
	c.Flush()
	return c
}

func TestCollectorChunksIntervals(t *testing.T) {
	c := collectPhases(1000, []byte("AABB"))
	if got := len(c.Intervals()); got != 4 {
		t.Fatalf("intervals = %d, want 4", got)
	}
}

func TestPickSeparatesPhases(t *testing.T) {
	c := collectPhases(1000, []byte("AAAABBBBAAAA"))
	sps := Pick(c.Intervals(), 2, 7)
	if len(sps) != 2 {
		t.Fatalf("simpoints = %d, want 2", len(sps))
	}
	// Weights: 8 A-intervals vs 4 B-intervals.
	if !(sps[0].Weight > sps[1].Weight) {
		t.Errorf("weights not ordered: %+v", sps)
	}
	if w := sps[0].Weight + sps[1].Weight; w < 0.99 || w > 1.01 {
		t.Errorf("weights sum to %v", w)
	}
	// The heavier simpoint must be an A interval (index <4 or >=8).
	rep := sps[0].Interval
	if rep >= 4 && rep < 8 {
		t.Errorf("heavy simpoint %d is a B interval", rep)
	}
}

func TestPickSingleCluster(t *testing.T) {
	c := collectPhases(500, []byte("AAAA"))
	sps := Pick(c.Intervals(), 3, 1)
	// All intervals identical: a single cluster suffices.
	total := 0.0
	for _, s := range sps {
		total += s.Weight
	}
	if total < 0.99 || total > 1.01 {
		t.Errorf("weights sum %v", total)
	}
}

func TestPickDeterministic(t *testing.T) {
	c := collectPhases(1000, []byte("AABBAABB"))
	a := Pick(c.Intervals(), 2, 42)
	b := Pick(c.Intervals(), 2, 42)
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic pick: %+v vs %+v", a, b)
		}
	}
}

func TestPickEmptyAndSmall(t *testing.T) {
	if Pick(nil, 3, 1) != nil {
		t.Error("empty input should give nil")
	}
	c := collectPhases(100, []byte("A"))
	sps := Pick(c.Intervals(), 5, 1)
	if len(sps) != 1 || sps[0].Weight != 1 {
		t.Errorf("single interval: %+v", sps)
	}
}

func TestPickKAtLeastIntervalCount(t *testing.T) {
	// Distinct intervals with k == n and k > n: every interval becomes its
	// own cluster, each weight 1/n, no representative repeats.
	c := collectPhases(1000, []byte("ABAB"))
	for _, k := range []int{4, 9} {
		sps := Pick(c.Intervals(), k, 3)
		if len(sps) == 0 || len(sps) > 4 {
			t.Fatalf("k=%d: got %d simpoints for 4 intervals", k, len(sps))
		}
		seen := map[int]bool{}
		sum := 0.0
		for _, s := range sps {
			if seen[s.Interval] {
				t.Fatalf("k=%d: duplicate representative %d", k, s.Interval)
			}
			seen[s.Interval] = true
			sum += s.Weight
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("k=%d: weights sum to %v", k, sum)
		}
	}
}

func TestPickDeterministicAcrossCollections(t *testing.T) {
	// Determinism must hold for independently rebuilt inputs, not just for
	// the same map values (map iteration order varies between runs).
	mk := func() []map[uint64]float64 {
		return collectPhases(1000, []byte("AABBAABBAB")).Intervals()
	}
	a := Pick(mk(), 3, 42)
	b := Pick(mk(), 3, 42)
	if len(a) != len(b) {
		t.Fatalf("nondeterministic length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic pick: %+v vs %+v", a, b)
		}
	}
}

func TestObserveBlockMatchesObserve(t *testing.T) {
	// Single-instruction blocks must be exactly equivalent to Observe.
	a := NewBBVCollector(100)
	b := NewBBVCollector(100)
	for i := uint64(0); i < 1000; i++ {
		pc := 0x1000 + (i%37)*4
		a.Observe(pc)
		b.ObserveBlock(pc, 1)
	}
	a.Flush()
	b.Flush()
	ia, ib := a.Intervals(), b.Intervals()
	if len(ia) != len(ib) {
		t.Fatalf("intervals: %d vs %d", len(ia), len(ib))
	}
	for i := range ia {
		if dist(ia[i], ib[i]) != 0 {
			t.Fatalf("interval %d differs", i)
		}
	}
}

func TestObserveBlockSplitsAtBoundaries(t *testing.T) {
	// Blocks larger than the remaining interval room are split exactly:
	// every sealed interval holds intervalLen instructions.
	c := NewBBVCollector(100)
	c.ObserveBlock(0x1000, 70)
	c.ObserveBlock(0x2000, 260) // spans three boundaries
	if got := len(c.Intervals()); got != 3 {
		t.Fatalf("sealed intervals = %d, want 3", got)
	}
	for i, iv := range c.Intervals() {
		sum := 0.0
		for _, w := range iv {
			sum += w
		}
		if sum != 100 {
			t.Fatalf("interval %d holds %v insts, want 100", i, sum)
		}
	}
	// 30 insts remain in the open interval: below half, dropped by Flush.
	c.Flush()
	if got := len(c.Intervals()); got != 3 {
		t.Fatalf("after flush: %d intervals, want 3 (short tail dropped)", got)
	}
}

func TestChunkBlocks(t *testing.T) {
	blocks := []Block{{0x1000, 150}, {0x9000, 150}, {0x1000, 80}}
	ivs := ChunkBlocks(blocks, 100)
	// 380 insts -> 3 full intervals + an 80-inst tail (kept: >= half).
	if len(ivs) != 4 {
		t.Fatalf("intervals = %d, want 4", len(ivs))
	}
	if ivs[0][0x1000>>5] != 100 {
		t.Fatalf("interval 0: %+v", ivs[0])
	}
	if ivs[1][0x1000>>5] != 50 || ivs[1][0x9000>>5] != 50 {
		t.Fatalf("interval 1 split wrong: %+v", ivs[1])
	}
}

// Property: weights always sum to ~1 and intervals are valid indices.
func TestPickInvariants_Property(t *testing.T) {
	f := func(seed uint64, pat []bool) bool {
		if len(pat) == 0 || len(pat) > 24 {
			return true
		}
		pattern := make([]byte, len(pat))
		for i, b := range pat {
			if b {
				pattern[i] = 'B'
			} else {
				pattern[i] = 'A'
			}
		}
		c := collectPhases(200, pattern)
		sps := Pick(c.Intervals(), 3, seed)
		sum := 0.0
		for _, s := range sps {
			if s.Interval < 0 || s.Interval >= len(c.Intervals()) {
				return false
			}
			sum += s.Weight
		}
		return sum > 0.99 && sum < 1.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDistSymmetry_Property(t *testing.T) {
	f := func(a, b []uint8) bool {
		va := make(map[uint64]float64)
		vb := make(map[uint64]float64)
		for i, x := range a {
			va[uint64(i%8)] += float64(x)
		}
		for i, x := range b {
			vb[uint64(i%8)] += float64(x)
		}
		return approx(dist(va, vb), dist(vb, va))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func approx(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

func TestPickDeterministicUnderTies(t *testing.T) {
	// Pick must be a pure function of (intervals, k, seed): every float
	// reduction walks keys in sorted order, so repeated calls — including
	// across processes — agree bit for bit. Map-iteration-order sums here
	// used to flip k-means tie-breaks on real workloads (two clusterings of
	// leela's BBVs tied, and the sampled Result flipped with them). Many
	// near-identical dense vectors maximize tie pressure.
	intervals := make([]map[uint64]float64, 64)
	for i := range intervals {
		v := make(map[uint64]float64, 16)
		for b := 0; b < 16; b++ {
			v[uint64(0x1000+b*4)] = float64(100 + (i*b)%3)
		}
		intervals[i] = v
	}
	want := Pick(intervals, 6, 42)
	for trial := 0; trial < 50; trial++ {
		got := Pick(intervals, 6, 42)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d points, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d point %d: %+v != %+v", trial, i, got[i], want[i])
			}
		}
	}
}
