// Package runahead implements the Branch Runahead comparison baseline
// (Pruett & Patt, MICRO 2021), core-only version, as configured in the
// paper's Section VI:
//
//   - Per delinquent branch, a dependence chain (backward slice) is
//     constructed; chains contain no branches besides their terminal branch
//     and, per the paper's experimental setup, no stores ("we excluded
//     stores from BR to help it").
//   - Chains execute in a statically partitioned half of the core for the
//     full run once constructed ("the main thread getting only half frontend
//     width, LQ, and PRF for the full run").
//   - Child chains are triggered speculatively from a bimodal prediction of
//     the parent chain's direction (BR-spec); an incorrect trigger squashes
//     the chain group and the correct child is triggered late. BR-non-spec
//     waits for the parent's resolution, serializing dependent chains.
//   - Predictions stream to the main thread through per-branch queues whose
//     entries are tagged with the dynamic iteration that produced them.
//
// The chain partition is modeled as one execution engine running the union
// of the chain slices (the same dataflow work BR's chains perform), with
// triggering, rollback, and serialization modeled at the queue boundary.
// The BR-12w variant gives the main thread full resources (Fig. 12a).
package runahead

import (
	"phelps/internal/bpred"
	"phelps/internal/core"
)

// Config parameterizes the Branch Runahead baseline.
type Config struct {
	EpochLen         uint64
	DBTSize          int
	DBTMaxSize       int
	ThresholdDivisor uint64

	QueueDepth int // per-branch prediction FIFO depth

	// Speculative selects BR-spec (bimodal chain triggering) vs BR-non-spec
	// (children wait for parent resolution).
	Speculative bool

	// StaticPartition halves the main thread for the full run once chains
	// exist (the paper's BR configuration). False models BR-12w, where the
	// main thread keeps baseline resources.
	StaticPartition bool

	// RollbackPenalty is the chain-group repair cost after a wrong
	// speculative trigger (squash + retrigger, Fig. 10b).
	RollbackPenalty uint64

	// SerializeDelay is the extra availability delay of guarded-chain
	// outcomes under non-speculative triggering.
	SerializeDelay uint64

	Construction core.ConstructionConfig
}

// DefaultConfig returns the configuration used in the paper's comparison.
func DefaultConfig() Config {
	cc := core.DefaultConstructionConfig()
	cc.IncludeStores = false // stores excluded from BR (Section VI)
	return Config{
		EpochLen:         4_000_000,
		DBTSize:          256,
		DBTMaxSize:       32,
		ThresholdDivisor: 2000,
		QueueDepth:       32,
		Speculative:      true,
		StaticPartition:  true,
		RollbackPenalty:  24,
		SerializeDelay:   20,
		Construction:     cc,
	}
}

// Stats counts Branch Runahead activity.
type Stats struct {
	RejectedLoops    map[uint64]core.RejectReason
	ChainsBuilt      uint64
	Triggers         uint64
	ChainRetired     uint64
	Rollbacks        uint64
	LateTriggers     uint64
	QueueConsumed    uint64
	QueueStale       uint64
	QueueUnavailable uint64
}

// brQueues is the DepositSink for the chain engine: per-branch FIFOs whose
// entries are tagged with the producing iteration, plus the speculative
// triggering model for guarded chains.
type brQueues struct {
	cfg   *Config
	stats *Stats
	now   func() uint64

	nQueues  int
	guards   []int  // queue -> guard queue (-1 = top-level chain)
	guardDir []bool // enabling direction of the guard
	bim      *bpred.Bimodal

	entries  []brFIFO // per queue
	tailIter uint64

	// per-iteration guard state (reset at AdvanceTail)
	actual    []bool // guard outcomes deposited this iteration
	hasActual []bool
	spec      []bool // bimodal decision made for this iteration

	engine *core.Engine // for rollback stalls (set after engine creation)
	depth  int
}

type brEntry struct {
	iter        uint64
	outcome     bool
	availableAt uint64
}

// brFIFO is one per-branch prediction queue: a fixed ring of depth entries.
// A popped slot's capacity is reused, so steady-state deposit/consume
// traffic allocates nothing (the previous re-sliced FIFO lost its backing
// capacity on every pop and reallocated on almost every deposit).
type brFIFO struct {
	buf  []brEntry
	head int
	n    int
}

func (f *brFIFO) len() int        { return f.n }
func (f *brFIFO) front() *brEntry { return &f.buf[f.head] }

func (f *brFIFO) pop() {
	f.head = (f.head + 1) % len(f.buf)
	f.n--
}

func (f *brFIFO) push(e brEntry) {
	f.buf[(f.head+f.n)%len(f.buf)] = e
	f.n++
}

func (f *brFIFO) reset() { f.head, f.n = 0, 0 }

func newBRQueues(cfg *Config, stats *Stats, n int, guards []int, guardDir []bool, now func() uint64) *brQueues {
	b := &brQueues{
		cfg: cfg, stats: stats, now: now,
		nQueues: n, guards: guards, guardDir: guardDir,
		bim:     bpred.NewBimodal(12),
		entries: make([]brFIFO, n),
		actual:  make([]bool, n), hasActual: make([]bool, n),
		spec:  make([]bool, n),
		depth: cfg.QueueDepth,
	}
	for i := range b.entries {
		b.entries[i].buf = make([]brEntry, cfg.QueueDepth)
	}
	return b
}

// reset returns pooled queues to their freshly-built state for a new
// trigger, keeping every ring and table backing allocation.
func (b *brQueues) reset() {
	b.bim.Reset()
	b.tailIter = 0
	for i := range b.entries {
		b.entries[i].reset()
		b.actual[i] = false
		b.hasActual[i] = false
		b.spec[i] = false
	}
	b.engine = nil
}

// Full reports backpressure: any per-branch FIFO at capacity.
func (b *brQueues) Full() bool {
	for i := range b.entries {
		if b.entries[i].len() >= b.depth {
			return true
		}
	}
	return false
}

// Deposit receives a chain outcome for the current iteration. Guarded
// chains are filtered through the speculative-triggering model.
func (b *brQueues) Deposit(qi int, outcome bool) {
	now := b.now()
	avail := now

	if g := b.guards[qi]; g >= 0 {
		// The guard's outcome for this iteration must have been produced
		// earlier in program order (chains deposit in slice order).
		if !b.hasActual[g] {
			// Guard unresolved (should not happen: engine is in-order at
			// retire) — treat as late trigger.
			b.stats.LateTriggers++
			return
		}
		enabled := b.actual[g] == b.guardDir[qi]
		if b.cfg.Speculative {
			// The trigger decision was made from the bimodal prediction of
			// the parent (captured when the parent deposited).
			specEnabled := b.spec[g] == b.guardDir[qi]
			switch {
			case specEnabled && !enabled:
				// Wrong trigger: chain group squash and rollback (Fig. 10b).
				b.stats.Rollbacks++
				if b.engine != nil {
					b.engine.Stall(now, b.cfg.RollbackPenalty)
				}
				return
			case !specEnabled && enabled:
				// Late trigger: the correct child starts after the parent
				// resolves; its outcome arrives too late to be consumed.
				b.stats.LateTriggers++
				return
			case !specEnabled && !enabled:
				return // correctly not triggered
			}
		} else {
			if !enabled {
				return
			}
			// Non-speculative: child waits for parent resolution.
			avail = now + b.cfg.SerializeDelay
		}
	}

	// Record this chain's own outcome for its children, with the bimodal
	// decision a speculative trigger would have used.
	b.spec[qi] = b.bim.Predict(depositPC(qi))
	b.bim.Train(depositPC(qi), outcome)
	b.actual[qi] = outcome
	b.hasActual[qi] = true

	if b.entries[qi].len() < b.depth {
		b.entries[qi].push(brEntry{iter: b.tailIter, outcome: outcome, availableAt: avail})
	}
}

// depositPC derives a stable bimodal index per queue.
func depositPC(qi int) uint64 { return uint64(qi+1) << 4 }

// AdvanceTail starts the next chain iteration.
func (b *brQueues) AdvanceTail() {
	b.tailIter++
	for i := range b.hasActual {
		b.hasActual[i] = false
	}
}

// consume pops the entry for the main thread's current iteration of branch
// queue qi; stale entries are discarded.
func (b *brQueues) consume(qi int, mtIter uint64, now uint64) (bool, bool) {
	q := &b.entries[qi]
	for q.len() > 0 && q.front().iter < mtIter {
		q.pop()
		b.stats.QueueStale++
	}
	if q.len() == 0 || q.front().iter != mtIter {
		b.stats.QueueUnavailable++
		return false, false
	}
	if q.front().availableAt > now {
		b.stats.QueueUnavailable++
		return false, false
	}
	out := q.front().outcome
	q.pop()
	b.stats.QueueConsumed++
	return out, true
}
