package runahead

import (
	"testing"

	"phelps/internal/core"
)

func testQueues(spec bool) (*brQueues, *Stats, *uint64) {
	cfg := DefaultConfig()
	cfg.Speculative = spec
	stats := &Stats{}
	now := new(uint64)
	// Queue 0 is a top-level chain; queue 1 is guarded by queue 0 in the
	// taken direction.
	q := newBRQueues(&cfg, stats, 2, []int{-1, 0}, []bool{false, true}, func() uint64 { return *now })
	return q, stats, now
}

func TestBRQueuesTopLevelFlow(t *testing.T) {
	q, _, _ := testQueues(true)
	for i := 0; i < 5; i++ {
		q.Deposit(0, i%2 == 0)
		q.AdvanceTail()
	}
	for i := 0; i < 5; i++ {
		out, ok := q.consume(0, uint64(i), 0)
		if !ok {
			t.Fatalf("iteration %d not available", i)
		}
		if out != (i%2 == 0) {
			t.Fatalf("iteration %d wrong outcome", i)
		}
	}
}

func TestBRQueuesStaleDiscard(t *testing.T) {
	q, st, _ := testQueues(true)
	for i := 0; i < 4; i++ {
		q.Deposit(0, true)
		q.AdvanceTail()
	}
	// Main thread skipped ahead to iteration 3: stale entries discarded.
	out, ok := q.consume(0, 3, 0)
	if !ok || !out {
		t.Fatalf("iteration 3: %v %v", out, ok)
	}
	if st.QueueStale != 3 {
		t.Errorf("stale = %d, want 3", st.QueueStale)
	}
}

func TestBRQueuesGuardedSpeculativeTriggering(t *testing.T) {
	q, st, _ := testQueues(true)
	// Train the internal bimodal toward "taken" for the parent chain.
	for i := 0; i < 8; i++ {
		q.Deposit(0, true) // parent taken: child (guardDir=true) enabled
		q.Deposit(1, i%2 == 0)
		q.AdvanceTail()
	}
	if st.Rollbacks != 0 {
		t.Errorf("unexpected rollbacks: %d", st.Rollbacks)
	}
	// Now the parent goes not-taken: the bimodal still says taken ->
	// wrong speculative trigger -> rollback, no enqueue for the child.
	childLen := q.entries[1].len()
	q.Deposit(0, false)
	q.Deposit(1, true)
	q.AdvanceTail()
	if st.Rollbacks != 1 {
		t.Errorf("rollbacks = %d, want 1", st.Rollbacks)
	}
	if q.entries[1].len() != childLen {
		t.Error("wrongly-triggered child outcome was enqueued")
	}
}

func TestBRQueuesLateTrigger(t *testing.T) {
	q, st, _ := testQueues(true)
	// Train bimodal toward not-taken, then flip: child should be late.
	for i := 0; i < 8; i++ {
		q.Deposit(0, false)
		q.Deposit(1, true) // child deposit filtered out (parent skip)
		q.AdvanceTail()
	}
	q.Deposit(0, true) // parent now enables the child; bimodal said skip
	q.Deposit(1, true)
	q.AdvanceTail()
	if st.LateTriggers == 0 {
		t.Error("expected a late trigger")
	}
}

func TestBRQueuesNonSpeculativeSerialization(t *testing.T) {
	q, _, now := testQueues(false)
	*now = 100
	q.Deposit(0, true)
	q.Deposit(1, true)
	q.AdvanceTail()
	// The child's outcome is correct but only available after the
	// serialization delay.
	if _, ok := q.consume(1, 0, 100); ok {
		t.Error("child available immediately under non-speculative triggering")
	}
	if out, ok := q.consume(1, 0, 100+DefaultConfig().SerializeDelay); !ok || !out {
		t.Errorf("child after delay: %v %v", out, ok)
	}
}

func TestBRQueuesFull(t *testing.T) {
	q, _, _ := testQueues(true)
	for i := 0; i < DefaultConfig().QueueDepth; i++ {
		if q.Full() {
			t.Fatalf("full at %d", i)
		}
		q.Deposit(0, true)
		q.AdvanceTail()
	}
	if !q.Full() {
		t.Error("queue should be full")
	}
}

func TestDefaultConfigMatchesPaperSetup(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Construction.IncludeStores {
		t.Error("BR must exclude stores (Section VI)")
	}
	if !cfg.Speculative || !cfg.StaticPartition {
		t.Error("default BR is the speculative, statically-partitioned configuration")
	}
	if cfg.Construction.MaxHTInsts != core.DefaultConstructionConfig().MaxHTInsts {
		t.Error("BR shares the chain-size limits with the construction machinery")
	}
}
