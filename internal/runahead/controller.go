package runahead

import (
	"phelps/internal/cache"
	"phelps/internal/clock"
	"phelps/internal/core"
	"phelps/internal/cpu"
	"phelps/internal/emu"
	"phelps/internal/isa"
	"phelps/internal/obs"
)

// Controller drives the Branch Runahead baseline: delinquency
// identification (same DBT machinery as Phelps — both derive from the same
// misprediction-counting requirements), chain construction via backward
// slicing, and the chain partition's execution.
type Controller struct {
	cfg     Config
	coreCfg cpu.Config

	mem  *emu.Memory
	hier *cache.Hierarchy
	mt   *cpu.Core

	dbt          *core.DBT
	trips        *core.TripStats
	lastBackward core.LoopBounds
	constructing *core.Construction
	rejected     map[uint64]bool

	// Installed chain program (the union of per-branch chains).
	prog    *core.HelperProgram
	loop    core.LoopBounds
	startPC uint64

	// Active chain engine state.
	engine   *core.Engine
	queues   *brQueues
	qidOf    map[uint64]int // branch PC -> queue id
	loopPC   uint64
	mtIter   uint64
	suppress bool

	// Pooled across triggers: the chain program is installed once, so the
	// engine window, spec cache, guard routing, and live-in staging are
	// trigger-invariant allocations.
	enginePool    *core.Engine
	specPool      *core.SpecCache
	queuesPool    *brQueues
	guards        []int
	dirs          []bool
	liveInScratch []uint64

	partitioned bool
	epochInsts  uint64
	now         uint64

	// sched, when attached, is the machine's event scheduler: the chain
	// engine inherits it at trigger and activations post clock.Spawn
	// wakeups (see internal/clock). nil in oracle mode.
	sched *clock.Scheduler

	Stats Stats
}

// AttachClock stores a machine's event scheduler on the controller (nil
// keeps the polled-mode silence; every posting site is nil-guarded).
func (c *Controller) AttachClock(s *clock.Scheduler) { c.sched = s }

// NewController builds a Branch Runahead controller.
func NewController(cfg Config, coreCfg cpu.Config, mem *emu.Memory, hier *cache.Hierarchy) *Controller {
	return &Controller{
		cfg:      cfg,
		coreCfg:  coreCfg,
		mem:      mem,
		hier:     hier,
		dbt:      core.NewDBT(cfg.DBTSize),
		trips:    core.NewTripStats(),
		rejected: make(map[uint64]bool),
		qidOf:    make(map[uint64]int),
	}
}

// AttachCore links the main-thread core.
func (c *Controller) AttachCore(mt *cpu.Core) { c.mt = mt }

// ResetStats zeroes the controller's counters without touching chain or
// queue state (sampled simulation's warmup/measure boundary). Pointers into
// the Stats field (brQueues) stay valid: the field is reassigned in place.
func (c *Controller) ResetStats() { c.Stats = Stats{} }

// RegisterObs registers the controller's counters and gauges into an
// observability registry under scope (e.g. "runahead" yields
// runahead.ctrl.chains_built, ...).
func (c *Controller) RegisterObs(r *obs.Registry, scope string) {
	ct := r.Scope(scope).Scope("ctrl")
	ct.Counter("chains_built", func() uint64 { return c.Stats.ChainsBuilt })
	ct.Counter("triggers", func() uint64 { return c.Stats.Triggers })
	ct.Counter("chain_retired", func() uint64 { return c.Stats.ChainRetired })
	ct.Counter("rollbacks", func() uint64 { return c.Stats.Rollbacks })
	ct.Counter("late_triggers", func() uint64 { return c.Stats.LateTriggers })
	ct.Counter("queue_consumed", func() uint64 { return c.Stats.QueueConsumed })
	ct.Counter("queue_stale", func() uint64 { return c.Stats.QueueStale })
	ct.Counter("queue_unavailable", func() uint64 { return c.Stats.QueueUnavailable })
	ct.Gauge("active_engines", func() float64 {
		if c.engine != nil {
			return 1
		}
		return 0
	})
}

// SetNow updates the controller clock.
func (c *Controller) SetNow(now uint64) { c.now = now }

func (c *Controller) threshold() uint64 {
	t := c.cfg.EpochLen / c.cfg.ThresholdDivisor
	if t < 4 {
		t = 4
	}
	return t
}

// Predict consumes a chain prediction for the branch at d.PC, if available.
func (c *Controller) Predict(d *emu.DynInst) (cpu.Prediction, bool) {
	if c.engine == nil {
		return cpu.Prediction{}, false
	}
	if d.PC == c.loopPC {
		// Count main-thread iterations for entry-tag alignment.
		var p cpu.Prediction
		handled := false
		if qi, ok := c.qidOf[d.PC]; ok {
			if out, got := c.queues.consume(qi, c.mtIter, c.now); got {
				p, handled = cpu.Prediction{Taken: out, FromQueue: true}, true
			}
		}
		c.mtIter++
		return p, handled
	}
	if qi, ok := c.qidOf[d.PC]; ok {
		if out, got := c.queues.consume(qi, c.mtIter, c.now); got {
			return cpu.Prediction{Taken: out, FromQueue: true}, true
		}
	}
	return cpu.Prediction{}, false
}

// OnRetire trains tables, runs construction, and triggers/terminates the
// chain engine.
func (c *Controller) OnRetire(d *emu.DynInst, misp bool) {
	pc := d.PC
	if d.Inst.Op.IsCondBranch() {
		if d.Taken && d.NextPC < pc {
			c.lastBackward = core.LoopBounds{Branch: pc, Target: d.NextPC, Valid: true}
		}
		if pc > pc+uint64(d.Inst.Imm) {
			c.trips.Record(pc, d.Taken)
		}
		if misp {
			c.dbt.RecordMisp(pc)
		}
		c.dbt.TrainLoop(pc, c.lastBackward)
	}

	if c.constructing != nil && c.constructing.Reject() == core.RejectNone {
		c.constructing.ObserveRetire(&core.RetireEvent{
			PC: pc, Inst: d.Inst, Taken: d.Taken, Addr: d.Addr, Size: d.MemSize,
		})
	}

	c.epochInsts++
	if c.epochInsts >= c.cfg.EpochLen {
		c.epochInsts = 0
		c.epochTurnover()
	}

	if c.engine != nil {
		if !c.loop.Contains(pc) {
			c.terminate()
		}
	} else if c.prog != nil {
		if c.suppress && !c.loop.Contains(pc) {
			c.suppress = false
		}
		if !c.suppress && pc == c.startPC {
			c.trigger()
		}
	}
}

// OnFetch collects loop instructions during construction.
func (c *Controller) OnFetch(d *emu.DynInst) {
	if c.constructing != nil && c.constructing.Reject() == core.RejectNone {
		c.constructing.CollectFetch(d.PC, d.Inst)
	}
}

// CycleChains advances the chain partition.
func (c *Controller) CycleChains(now uint64, lanes *cpu.LanePool) {
	if c.engine == nil {
		return
	}
	c.engine.Cycle(now, lanes)
	if c.engine.Done() {
		c.terminate()
	}
}

func (c *Controller) epochTurnover() {
	if con := c.constructing; con != nil {
		progs, reject := con.Finalize(c.trips)
		if reject == core.RejectNone && len(progs) == 1 {
			c.install(con, progs[0])
		} else {
			c.rejected[con.LT.Loop.Branch] = true
			if c.Stats.RejectedLoops == nil {
				c.Stats.RejectedLoops = make(map[uint64]core.RejectReason)
			}
			c.Stats.RejectedLoops[con.LT.Loop.Branch] = reject
		}
		c.constructing = nil
	}
	if c.prog == nil && c.constructing == nil {
		// Chains are built per delinquent branch; they live within the
		// branch's innermost loop (prior-instance-of-self termination).
		lt := core.BuildLT(c.dbt, c.cfg.DBTMaxSize, 8, c.threshold())
		for _, entry := range lt {
			if c.rejected[entry.Loop.Branch] {
				continue
			}
			// BR has no dual decoupled threads: force single-level slicing
			// over the branch's innermost loop when nested.
			e := entry
			if entry.IsNested {
				flat := *entry
				flat.Loop = entry.InnerLoop
				flat.IsNested = false
				// Keep only branches within the inner loop.
				var pcs []uint64
				for _, bpc := range entry.Branches {
					if entry.InnerLoop.Contains(bpc) {
						pcs = append(pcs, bpc)
					}
				}
				if len(pcs) == 0 {
					continue
				}
				flat.Branches = pcs
				e = &flat
			}
			cc := c.cfg.Construction
			cc.IncludeStores = false
			cc.MinTrips = 1      // BR does not amortize start/stop like Phelps
			cc.SizeRulePct = 400 // chains have no 75% size eligibility rule
			c.constructing = core.NewConstruction(cc, e)
			break
		}
	}
	c.dbt.Reset()
	c.trips.Reset()
}

func (c *Controller) install(con *core.Construction, p *core.HelperProgram) {
	c.prog = p
	c.loop = con.LT.Loop
	c.startPC = con.LT.Loop.Target
	c.loopPC = p.LoopBranch
	c.Stats.ChainsBuilt += uint64(len(p.QueuePCs))

	// Guard relationships between chains and the PC->queue routing are
	// properties of the installed program: compute them once here rather
	// than on every trigger.
	n := len(p.QueuePCs)
	c.guards = make([]int, n)
	c.dirs = make([]bool, n)
	for i := range c.guards {
		c.guards[i] = -1
	}
	qidByPred := make(map[isa.PredReg]int)
	for i := range p.Insts {
		hi := &p.Insts[i]
		if hi.QueueID >= 0 && hi.Inst.Op == isa.PPRODUCE {
			qidByPred[hi.Inst.PredDst] = hi.QueueID
		}
	}
	for i := range p.Insts {
		hi := &p.Insts[i]
		if hi.QueueID >= 0 && hi.Inst.Op == isa.PPRODUCE && hi.Inst.PredSrc != isa.Pred0 {
			if g, ok := qidByPred[hi.Inst.PredSrc]; ok {
				c.guards[hi.QueueID] = g
				c.dirs[hi.QueueID] = hi.Inst.PredDir
			}
		}
	}
	c.qidOf = make(map[uint64]int, n)
	for i, pc := range p.QueuePCs {
		c.qidOf[pc] = i
	}
	// Static partition: the main thread loses half its resources for the
	// rest of the run (the paper's BR configuration).
	if c.cfg.StaticPartition && !c.partitioned {
		c.mt.SetLimits(c.coreCfg.FullLimits().Scale(1, 2))
		c.partitioned = true
	}
}

// trigger starts the chain engine at a loop visit. The pipeline is squashed
// so the chains' snooped register values correspond to the main thread's
// restart point.
func (c *Controller) trigger() {
	c.Stats.Triggers++
	now := c.now
	c.mt.SquashAll(now)

	if c.queuesPool == nil {
		c.queuesPool = newBRQueues(&c.cfg, &c.Stats, len(c.prog.QueuePCs), c.guards, c.dirs, func() uint64 { return c.now })
	} else {
		c.queuesPool.reset()
	}
	c.queues = c.queuesPool
	c.mtIter = 0

	// Both BR configurations give the chain partition half the full machine.
	chainLim := c.coreCfg.FullLimits().Scale(1, 2)
	liveIns := c.liveInScratch[:0]
	for _, r := range c.prog.LiveInsMT {
		liveIns = append(liveIns, c.mt.ArchReg(r))
	}
	c.liveInScratch = liveIns
	// Chains have no live-in move protocol like Phelps; they snoop values
	// at trigger. Start promptly.
	startAt := now + c.coreCfg.FrontendLatency()
	if c.specPool == nil {
		c.specPool = core.NewSpecCache(1, 1) // unused: chains have no stores
	} else {
		c.specPool.ResetAll()
	}
	if c.enginePool == nil {
		c.enginePool = core.NewEngine(c.prog, c.queues, c.specPool, nil, c.mem, c.hier, c.coreCfg, chainLim, liveIns, startAt)
	} else {
		c.enginePool.Reinit(c.prog, c.queues, c.specPool, nil, c.mem, c.hier, c.coreCfg, chainLim, liveIns, startAt)
	}
	c.engine = c.enginePool
	c.queues.engine = c.engine
	if c.sched != nil {
		c.engine.AttachClock(c.sched)
		c.sched.Post(clock.Spawn, startAt)
	}
}

func (c *Controller) terminate() {
	if c.engine == nil {
		return
	}
	st := c.engine.Stats
	c.Stats.ChainRetired += st.Retired
	c.engine = nil
	c.queues = nil
	c.suppress = true
	// The static partition persists (resources are NOT returned): this is
	// the BR cost the paper highlights in Fig. 12a.
	if !c.cfg.StaticPartition {
		c.mt.SetLimits(c.coreCfg.FullLimits())
	}
}

// SkipCycles bulk-accounts an event-free span for the chain engine.
func (c *Controller) SkipCycles(from, n uint64) {
	if c.engine == nil || c.engine.Done() {
		return
	}
	c.engine.SkipCycles(from, n)
}
