// Graph sweep: run the GAP-style kernels across the three input families
// (road / web / kron) under baseline and Phelps, the way the paper's
// Fig. 15b studies bfs inputs — extended here to several kernels.
//
//	go run ./examples/graphsweep
package main

import (
	"fmt"

	"phelps/internal/graph"
	"phelps/internal/prog"
	"phelps/internal/sim"
	"phelps/internal/stats"
)

func main() {
	fmt.Println("GAP kernels across graph families")
	fmt.Println("=================================")

	inputs := []struct {
		name string
		mk   func() *graph.Graph
	}{
		{"road", func() *graph.Graph { return graph.Road(48, 48, 11) }},
		{"web", func() *graph.Graph { return graph.Web(1800, 2, 13) }},
		{"kron", func() *graph.Graph { return graph.Kron(10, 6, 17) }},
	}
	kernels := []struct {
		name string
		mk   func(g *graph.Graph) *prog.Workload
	}{
		{"bfs", func(g *graph.Graph) *prog.Workload { return prog.BFS(g, g.MainComponentSource()) }},
		{"cc", prog.CC},
		{"pr", func(g *graph.Graph) *prog.Workload { return prog.PageRank(g, 4, 85, 100, (1<<20)/800) }},
		{"tc", prog.TC},
	}

	fmt.Printf("\n%-6s %-6s %10s %10s %10s %9s\n",
		"kernel", "input", "base MPKI", "ph. MPKI", "speedup", "verified")
	var speedups []float64
	for _, k := range kernels {
		for _, in := range inputs {
			base, baseErr := sim.Run(k.mk(in.mk()), sim.DefaultConfig())
			ph, phErr := sim.Run(k.mk(in.mk()), sim.PhelpsConfig(40_000))
			ok := "yes"
			if baseErr != nil || phErr != nil {
				ok = "NO"
			}
			s := float64(base.Cycles) / float64(ph.Cycles)
			speedups = append(speedups, s)
			fmt.Printf("%-6s %-6s %10.2f %10.2f %9.2fx %9s\n",
				k.name, in.name, base.MPKI(), ph.MPKI(), s, ok)
		}
	}
	fmt.Printf("\ngeometric-mean speedup across the sweep: %.2fx\n", stats.GeoMean(speedups))
	fmt.Println("\nNote these sweep graphs are small enough to live in the caches, so")
	fmt.Println("the main thread is fast and the partition cost often cancels the")
	fmt.Println("MPKI wins (compare the MPKI columns). The paper-scale runs behind")
	fmt.Println("EXPERIMENTS.md use larger graphs, where pre-execution pays off.")
}
