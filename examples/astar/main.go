// The paper's running example: SPEC astar's makebound2() flood fill
// (Fig. 3), with its 8 pairs of dependent delinquent branches (b1..b16) and
// guarded influential stores (s1..s8).
//
// This example reproduces the Fig. 11 comparison — Branch Runahead vs full
// Phelps vs the feature ablations — and demonstrates the SimPoints
// methodology on the workload's phase structure.
//
//	go run ./examples/astar
package main

import (
	"fmt"
	"os"

	"phelps/internal/prog"
	"phelps/internal/sim"
)

func main() {
	fmt.Println("astar makebound2: dependent delinquent branches and stores")
	fmt.Println("===========================================================")
	fmt.Println()
	fmt.Println("  for (i = 0; i < bound1l; i++)            // the delinquent loop")
	fmt.Println("    for each of 8 neighbors:")
	fmt.Println("      if (waymap[index1].fillnum != fill)   // b1 (delinquent)")
	fmt.Println("        if (maparp[index1] == 0)            // b2 (delinquent, guarded by b1)")
	fmt.Println("          waymap[index1].fillnum = fill     // s1 (guarded, influences b1)")
	fmt.Println()

	rows, err := sim.Fig11(true)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fig11: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(sim.FormatFig11(rows))
	fmt.Println()
	fmt.Println("The ordering to notice (Section VI of the paper):")
	fmt.Println("  - Phelps:b1 only helps a little: b2 keeps mispredicting.")
	fmt.Println("  - Phelps:b1->b2 pre-executes both, but without s1 the helper")
	fmt.Println("    thread reads stale waymap data, so some b1 outcomes are wrong.")
	fmt.Println("  - Full Phelps keeps s1, predicated on b1 and b2, and wins.")
	fmt.Println()

	// Sampled simulation on the same workload: SampledRun profiles the run
	// functionally, clusters the interval BBVs into SimPoints, and simulates
	// only the representative intervals cycle-accurately, reconstructing the
	// whole-run metrics from the cluster weights.
	fmt.Println("Sampled simulation (SimPoints) on the astar run")
	fmt.Println("-----------------------------------------------")
	spec := sim.Spec{
		Name:  "astar",
		Build: func() *prog.Workload { return prog.Astar(56, 56, 35, 600, 7) },
	}
	full, err := sim.Run(spec.Build(), sim.DefaultConfig())
	if err != nil {
		fmt.Fprintf(os.Stderr, "full run failed: %v\n", err)
		os.Exit(1)
	}
	sampled, err := sim.SampledRun(spec, sim.DefaultConfig(), sim.SampleConfig{K: 4})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sampled run failed: %v\n", err)
		os.Exit(1)
	}
	rep := sampled.Sampled
	fmt.Printf("  %d intervals of %d insts -> %d SimPoints\n",
		rep.Intervals, rep.IntervalLen, len(rep.Points))
	for _, p := range rep.Points {
		fmt.Printf("  simpoint at interval %3d  weight %.2f  IPC %.2f\n",
			p.Interval, p.Weight, p.IPC)
	}
	fmt.Printf("  sampled IPC %.3f vs full IPC %.3f (%.1f%% error, %d of %d insts measured)\n",
		sampled.IPC(), full.IPC(),
		(sampled.IPC()-full.IPC())/full.IPC()*100,
		measuredInsts(rep), full.Retired)
}

// measuredInsts sums the cycle-accurately measured instructions across points.
func measuredInsts(rep *sim.SampleReport) uint64 {
	var n uint64
	for _, p := range rep.Points {
		n += p.Measured
	}
	return n
}
