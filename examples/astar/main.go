// The paper's running example: SPEC astar's makebound2() flood fill
// (Fig. 3), with its 8 pairs of dependent delinquent branches (b1..b16) and
// guarded influential stores (s1..s8).
//
// This example reproduces the Fig. 11 comparison — Branch Runahead vs full
// Phelps vs the feature ablations — and demonstrates the SimPoints
// methodology on the workload's phase structure.
//
//	go run ./examples/astar
package main

import (
	"fmt"

	"phelps/internal/prog"
	"phelps/internal/sim"
	"phelps/internal/simpoint"
	"phelps/internal/stats"
)

func main() {
	fmt.Println("astar makebound2: dependent delinquent branches and stores")
	fmt.Println("===========================================================")
	fmt.Println()
	fmt.Println("  for (i = 0; i < bound1l; i++)            // the delinquent loop")
	fmt.Println("    for each of 8 neighbors:")
	fmt.Println("      if (waymap[index1].fillnum != fill)   // b1 (delinquent)")
	fmt.Println("        if (maparp[index1] == 0)            // b2 (delinquent, guarded by b1)")
	fmt.Println("          waymap[index1].fillnum = fill     // s1 (guarded, influences b1)")
	fmt.Println()

	rows := sim.Fig11(true)
	fmt.Print(sim.FormatFig11(rows))
	fmt.Println()
	fmt.Println("The ordering to notice (Section VI of the paper):")
	fmt.Println("  - Phelps:b1 only helps a little: b2 keeps mispredicting.")
	fmt.Println("  - Phelps:b1->b2 pre-executes both, but without s1 the helper")
	fmt.Println("    thread reads stale waymap data, so some b1 outcomes are wrong.")
	fmt.Println("  - Full Phelps keeps s1, predicated on b1 and b2, and wins.")
	fmt.Println()

	// SimPoints methodology demo: chunk the run into intervals, cluster, and
	// combine per-region IPCs with the weighted harmonic mean.
	fmt.Println("SimPoints on the astar run")
	fmt.Println("--------------------------")
	w := prog.Astar(56, 56, 35, 600, 7)
	collector := simpoint.NewBBVCollector(20_000)

	// Functional pass to collect BBVs (the paper profiles, then simulates
	// the representative regions).
	res := sim.Run(w, sim.DefaultConfig())
	_ = res
	w2 := prog.Astar(56, 56, 35, 600, 7)
	e := newFunctionalRunner(w2, collector)
	e.run()
	collector.Flush()

	sps := simpoint.Pick(collector.Intervals(), 4, 7)
	fmt.Printf("  %d intervals -> %d SimPoints\n", len(collector.Intervals()), len(sps))
	var ipcs, weights []float64
	for _, sp := range sps {
		// In a full flow each representative region would be simulated in
		// detail; here the whole (small) run was simulated, so per-region
		// IPC is approximated by the overall IPC for illustration.
		ipcs = append(ipcs, res.IPC())
		weights = append(weights, sp.Weight)
		fmt.Printf("  simpoint at interval %3d  weight %.2f\n", sp.Interval, sp.Weight)
	}
	fmt.Printf("  weighted harmonic mean IPC: %.2f\n",
		stats.WeightedHarmonicMeanIPC(ipcs, weights))
}

// functionalRunner drives a workload functionally, feeding retired PCs to
// the BBV collector.
type functionalRunner struct {
	w *prog.Workload
	c *simpoint.BBVCollector
}

func newFunctionalRunner(w *prog.Workload, c *simpoint.BBVCollector) *functionalRunner {
	return &functionalRunner{w: w, c: c}
}

func (f *functionalRunner) run() {
	run := prog.RunAndVerifyWithObserver(f.w, f.c.Observe)
	if run != nil {
		fmt.Printf("  functional pass failed: %v\n", run)
	}
}
