// Quickstart: build a workload with a delinquent branch, run it on the
// baseline core and again with Phelps predicated helper threads, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"phelps/internal/prog"
	"phelps/internal/sim"
)

// mustRun runs a workload and exits on simulation error (livelock or
// functional-verification failure) — fine for an example, where any error
// means the demo itself is broken.
func mustRun(w *prog.Workload, cfg sim.Config) sim.Result {
	r, err := sim.Run(w, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sim failed: %v\n", err)
		os.Exit(1)
	}
	return r
}

func main() {
	fmt.Println("Phelps quickstart")
	fmt.Println("=================")
	fmt.Println()
	fmt.Println("The workload: a loop whose branch tests random data — a delinquent")
	fmt.Println("branch no history-based predictor can learn.")
	fmt.Println()

	// 50,000 iterations, 50% taken (maximally delinquent), seed 1.
	baseline := mustRun(prog.DelinquentLoop(50000, 50, 1), sim.DefaultConfig())

	// Same workload, with Phelps enabled (epoch scaled to the run length).
	phelps := mustRun(prog.DelinquentLoop(50000, 50, 1), sim.PhelpsConfig(50_000))

	for _, r := range []struct {
		name string
		res  sim.Result
	}{{"baseline (TAGE-SC-L)", baseline}, {"Phelps", phelps}} {
		fmt.Printf("%-22s IPC %5.2f   MPKI %6.2f   cycles %9d\n",
			r.name, r.res.IPC(), r.res.MPKI(), r.res.Cycles)
	}

	fmt.Println()
	fmt.Printf("speedup: %.2fx  (MPKI %.1f -> %.1f)\n",
		float64(baseline.Cycles)/float64(phelps.Cycles), baseline.MPKI(), phelps.MPKI())
	fmt.Println()
	fmt.Println("What happened inside Phelps:")
	p := phelps.Phelps
	fmt.Printf("  epoch 0: branch mispredictions gathered in the DBT\n")
	fmt.Printf("  epoch 1: a helper thread was sliced out of the loop (IBDA)\n")
	fmt.Printf("  epoch 2+: %d trigger(s); the helper thread pre-executed %d loop\n",
		p.Triggers, p.HTIterations)
	fmt.Printf("  iterations and deposited outcomes into prediction queues; the\n")
	fmt.Printf("  main thread consumed %d of them (%d wrong, %d too late)\n",
		phelps.QueuePreds, phelps.QueueMisps, p.QueueUntimely)
}
