// Dual decoupled helper threads on the Fig. 2 nested-loop idiom: a
// long-running outer loop over an inner loop with a short, unpredictable
// trip count. A single helper thread would serialize on the inner loop's
// backward branch (brC); Phelps runs an outer thread that queues inner-loop
// visits through the Visit Queue for a decoupled inner thread.
//
//	go run ./examples/nestedloop
package main

import (
	"fmt"
	"os"

	"phelps/internal/prog"
	"phelps/internal/sim"
)

func mustRun(w *prog.Workload, cfg sim.Config) sim.Result {
	r, err := sim.Run(w, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sim failed: %v\n", err)
		os.Exit(1)
	}
	return r
}

func main() {
	fmt.Println("Nested-loop idiom: dual decoupled helper threads")
	fmt.Println("================================================")
	fmt.Println()
	fmt.Println("  for i in 0..n:              // outer loop   -> outer thread")
	fmt.Println("      if len[i] == 0 continue // brA (header) -> queues a visit")
	fmt.Println("      for j in 0..len[i]:     // inner loop   -> inner thread")
	fmt.Println("          if data[i][j] ... { ... }  // brB (delinquent)")
	fmt.Println("                              // brC: trip count 0..6, unpredictable")
	fmt.Println()

	mk := func() *prog.Workload { return prog.NestedLoop(30000, 6, 4) }

	base := mustRun(mk(), sim.DefaultConfig())
	ph := mustRun(mk(), sim.PhelpsConfig(60_000))
	perfect := sim.DefaultConfig()
	perfect.Predictor = sim.PredPerfect
	perf := mustRun(mk(), perfect)

	fmt.Printf("%-24s IPC %5.2f   MPKI %6.2f\n", "baseline", base.IPC(), base.MPKI())
	fmt.Printf("%-24s IPC %5.2f   MPKI %6.2f\n", "Phelps (dual threads)", ph.IPC(), ph.MPKI())
	fmt.Printf("%-24s IPC %5.2f   MPKI %6.2f\n", "perfect BP (bound)", perf.IPC(), perf.MPKI())
	fmt.Println()
	p := ph.Phelps
	fmt.Println("Dual-thread activity:")
	fmt.Printf("  outer thread iterations   %d\n", p.HTIterations-uint64(p.HTVisits))
	fmt.Printf("  inner-loop visits queued  %d (through the 16-entry Visit Queue)\n", p.HTVisits)
	fmt.Printf("  queue predictions         %d consumed, %d wrong, %d untimely\n",
		ph.QueuePreds, ph.QueueMisps, p.QueueUntimely)
	fmt.Printf("  speedup                   %.2fx (perfect BP bound: %.2fx)\n",
		float64(base.Cycles)/float64(ph.Cycles), float64(base.Cycles)/float64(perf.Cycles))
	fmt.Println()
	fmt.Println("The outer thread's progress is independent of brC mispredictions —")
	fmt.Println("they serialize only the inner thread (Section I of the paper).")
}
